/**
 * @file
 * SPEC-CPU2017-class workloads, part A: mcf, lbm, x264, deepsjeng.
 * Each captures the dominant kernel character of its namesake: mcf's
 * pointer chasing, lbm's collide step, x264's SAD motion search, and
 * deepsjeng's bitboard arithmetic.
 */
#include "workloads/workload.hpp"

#include <cmath>
#include <numeric>
#include <vector>

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace diag::workloads
{

using detail::closeF32;
using detail::partitionBounds;
using detail::readF32;
using detail::writeF32;

namespace
{

// ---------------------------------------------------------------------
// mcf: pointer chasing over per-tile permutation cycles
// ---------------------------------------------------------------------

constexpr u32 kMcfTiles = 48;
constexpr u32 kMcfTileEntries = 2048;
constexpr u32 kMcfEntries = kMcfTiles * kMcfTileEntries;
constexpr u32 kMcfSteps = 256;
constexpr Addr kMcfNext = 0x100000;  // permutation (global indices)
constexpr Addr kMcfVal = 0x180000;   // per-entry values
constexpr Addr kMcfOut = 0x200000;   // per-tile accumulator

std::vector<u32>
mcfPermutation()
{
    Rng rng(0x3cf3cf);
    std::vector<u32> next(kMcfEntries);
    for (u32 t = 0; t < kMcfTiles; ++t) {
        // A single cycle through the tile: shuffled successor chain.
        std::vector<u32> order(kMcfTileEntries);
        std::iota(order.begin(), order.end(), 0);
        for (u32 i = kMcfTileEntries - 1; i > 0; --i)
            std::swap(order[i],
                      order[static_cast<u32>(rng.below(i + 1))]);
        const u32 base = t * kMcfTileEntries;
        for (u32 i = 0; i < kMcfTileEntries; ++i)
            next[base + order[i]] =
                base + order[(i + 1) % kMcfTileEntries];
    }
    return next;
}

Workload
makeMcf()
{
    Workload w;
    w.name = "mcf";
    w.suite = "spec";
    w.data_ranges = {{kMcfNext, 0x80000},
                     {kMcfVal, 0x80000},
                     {kMcfOut, 0x10000}};
    w.description = "network-simplex-style pointer chasing: " +
                    std::to_string(kMcfSteps) +
                    " dependent steps over " +
                    std::to_string(kMcfTiles) + " shuffled cycles";
    w.profile = Profile::Memory;

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kMcfNext) + "\n" +
                   "    li s5, " + std::to_string(kMcfVal) + "\n" +
                   "    li s6, " + std::to_string(kMcfOut) + "\n" +
                   partitionBounds(kMcfTiles) + R"(
tile_loop:
    li t0, )" + std::to_string(kMcfTileEntries) + R"(
    mul s9, s2, t0         # p = tile base entry
    li s10, 0              # acc
    li s11, )" + std::to_string(kMcfSteps) + R"(
chase:
    slli t0, s9, 2
    add t1, t0, s5
    lw t2, 0(t1)           # val[p]
    add s10, s10, t2
    andi t3, s10, 1
    beqz t3, even
    addi s10, s10, 3
even:
    add t1, t0, s4
    lw s9, 0(t1)           # p = next[p]
    addi s11, s11, -1
    bnez s11, chase
    slli t0, s2, 2
    add t0, t0, s6
    sw s10, 0(t0)
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        const std::vector<u32> next = mcfPermutation();
        for (u32 i = 0; i < kMcfEntries; ++i)
            mem.write32(kMcfNext + 4 * i, next[i]);
        Rng rng(0x3cf001);
        for (u32 i = 0; i < kMcfEntries; ++i)
            mem.write32(kMcfVal + 4 * i,
                        static_cast<u32>(rng.below(1000)));
    };

    w.check = [](const SparseMemory &mem) {
        const std::vector<u32> next = mcfPermutation();
        Rng rng(0x3cf001);
        std::vector<u32> val(kMcfEntries);
        for (auto &v : val)
            v = static_cast<u32>(rng.below(1000));
        for (u32 t = 0; t < kMcfTiles; ++t) {
            u32 p = t * kMcfTileEntries;
            u32 acc = 0;
            for (u32 s = 0; s < kMcfSteps; ++s) {
                acc += val[p];
                if (acc & 1)
                    acc += 3;
                p = next[p];
            }
            if (mem.read32(kMcfOut + 4 * t) != acc)
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// lbm: D2Q5 lattice-Boltzmann collide step (local relaxation)
// ---------------------------------------------------------------------

constexpr u32 kLbmW_ = 64;   // grid width
constexpr u32 kLbmH = 98;    // grid height (96 interior rows)
constexpr u32 kLbmStride = 20;          // bytes per cell (5 dists)
constexpr u32 kLbmRowBytes = kLbmW_ * kLbmStride;  // 1280
constexpr Addr kLbmFIn = 0x100000;      // source distributions
constexpr Addr kLbmFOut = 0x140000;     // streamed+collided output
constexpr float kLbmOmega = 0.7f;
// D2Q5 weights: rest 1/3, directions 1/6.
constexpr float kLbmWt[5] = {1.0f / 3, 1.0f / 6, 1.0f / 6, 1.0f / 6,
                             1.0f / 6};

Workload
makeLbm()
{
    Workload w;
    w.name = "lbm";
    w.suite = "spec";
    w.data_ranges = {{kLbmFIn, 0x40000}, {kLbmFOut, 0x40000}};
    w.description = "lattice-Boltzmann D2Q5 stream+collide step over a "
                    "64x98 grid (neighbor gathers, double buffered)";
    w.profile = Profile::Memory;

    const std::string prologue =
        "_start:\n"
        "    li s4, " + std::to_string(kLbmFIn) + "\n" +
        "    li s5, " + std::to_string(kLbmFOut) + "\n" +
        "    li t1, 0x3f333333\n"    // omega 0.7f
        "    fmv.w.x f15, t1\n"
        "    li t1, 0x3eaaaaab\n"    // 1/3
        "    fmv.w.x f14, t1\n"
        "    li t1, 0x3e2aaaab\n"    // 1/6
        "    fmv.w.x f13, t1\n" +
        partitionBounds(kLbmH - 2);

    // Stream + collide one cell. Expects t1 = &f_in[cell], t2 =
    // &f_out[cell]; clobbers ft0..ft6. The f_d value is gathered from
    // the neighbor the distribution streams FROM: west/east are one
    // cell over (+-20B), north/south one row over (+-1280B).
    const std::string body =
        "    flw ft0, 0(t1)\n"         // rest: own cell
        "    flw ft1, -16(t1)\n"       // f1 from west  (-20 + 4)
        "    flw ft2, 28(t1)\n"        // f2 from east  (+20 + 8)
        "    flw ft3, -1268(t1)\n"     // f3 from north (-1280 + 12)
        "    flw ft4, 1296(t1)\n"      // f4 from south (+1280 + 16)
        "    fadd.s ft5, ft0, ft1\n"
        "    fadd.s ft5, ft5, ft2\n"
        "    fadd.s ft5, ft5, ft3\n"
        "    fadd.s ft5, ft5, ft4\n"   // rho
        "    fmul.s ft6, ft5, f14\n"
        "    fsub.s ft6, ft6, ft0\n"
        "    fmadd.s ft0, ft6, f15, ft0\n"
        "    fsw ft0, 0(t2)\n"
        "    fmul.s ft6, ft5, f13\n"
        "    fsub.s ft6, ft6, ft1\n"
        "    fmadd.s ft1, ft6, f15, ft1\n"
        "    fsw ft1, 4(t2)\n"
        "    fmul.s ft6, ft5, f13\n"
        "    fsub.s ft6, ft6, ft2\n"
        "    fmadd.s ft2, ft6, f15, ft2\n"
        "    fsw ft2, 8(t2)\n"
        "    fmul.s ft6, ft5, f13\n"
        "    fsub.s ft6, ft6, ft3\n"
        "    fmadd.s ft3, ft6, f15, ft3\n"
        "    fsw ft3, 12(t2)\n"
        "    fmul.s ft6, ft5, f13\n"
        "    fsub.s ft6, ft6, ft4\n"
        "    fmadd.s ft4, ft6, f15, ft4\n"
        "    fsw ft4, 16(t2)\n";

    w.asm_serial = prologue + R"(
    mv s7, s2
rloop:
    addi t0, s7, 1         # interior row index
    li t3, )" + std::to_string(kLbmRowBytes) + R"(
    mul t0, t0, t3
    addi t0, t0, 20        # first interior column
    add t1, s4, t0
    add t2, s5, t0
    li t6, )" + std::to_string(kLbmW_ - 2) + R"(
closs:
)" + body + R"(
    addi t1, t1, 20
    addi t2, t2, 20
    addi t6, t6, -1
    bnez t6, closs
    addi s7, s7, 1
    bne s7, s3, rloop
    ebreak
)";

    // SIMT variant: each row sweep is a region; rc = cell byte offset
    // within the row (steps of one cell stride).
    w.asm_simt = prologue + R"(
    mv s7, s2
rloop:
    addi t0, s7, 1
    li t3, )" + std::to_string(kLbmRowBytes) + R"(
    mul t0, t0, t3
    addi t0, t0, 20
    add a5, s4, t0         # in row base
    add a6, s5, t0         # out row base
    li a2, 0               # rc
    li a3, 20              # step: one cell
    li a4, )" + std::to_string((kLbmW_ - 2) * kLbmStride) + R"(
head:
    simt_s a2, a3, a4, 1
    add t1, a5, a2
    add t2, a6, a2
)" + body + R"(
    simt_e a2, a4, head
    addi s7, s7, 1
    bne s7, s3, rloop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x1b31b3);
        for (u32 c = 0; c < kLbmW_ * kLbmH; ++c)
            for (u32 d = 0; d < 5; ++d)
                writeF32(mem, kLbmFIn + c * kLbmStride + 4 * d,
                         kLbmWt[d] * (0.8f + 0.4f * rng.uniform()));
    };

    w.check = [](const SparseMemory &mem) {
        Rng rng(0x1b31b3);
        std::vector<float> f(5 * kLbmW_ * kLbmH);
        for (u32 c = 0; c < kLbmW_ * kLbmH; ++c)
            for (u32 d = 0; d < 5; ++d)
                f[c * 5 + d] =
                    kLbmWt[d] * (0.8f + 0.4f * rng.uniform());
        for (u32 r = 1; r + 1 < kLbmH; ++r) {
            for (u32 col = 1; col + 1 < kLbmW_; ++col) {
                const u32 c = r * kLbmW_ + col;
                const float g[5] = {
                    f[c * 5 + 0], f[(c - 1) * 5 + 1],
                    f[(c + 1) * 5 + 2], f[(c - kLbmW_) * 5 + 3],
                    f[(c + kLbmW_) * 5 + 4]};
                float rho = g[0] + g[1];
                rho += g[2];
                rho += g[3];
                rho += g[4];
                for (u32 d = 0; d < 5; ++d) {
                    const float eq = rho * kLbmWt[d];
                    const float want =
                        std::fmaf(eq - g[d], kLbmOmega, g[d]);
                    if (!closeF32(
                            readF32(mem, kLbmFOut + c * kLbmStride +
                                             4 * d),
                            want))
                        return false;
                }
            }
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// x264: sum-of-absolute-differences motion search
// ---------------------------------------------------------------------

constexpr u32 kX264Cands = 192;
constexpr u32 kX264Blk = 8;
constexpr u32 kX264RefW = 64;
constexpr Addr kX264Ref = 0x100000;   // 64x64 bytes
constexpr Addr kX264Cur = 0x102000;   // 8x8 bytes
constexpr Addr kX264Pos = 0x103000;   // candidate (x, y) word pairs
constexpr Addr kX264Sad = 0x104000;   // SAD per candidate

Workload
makeX264()
{
    Workload w;
    w.name = "x264";
    w.suite = "spec";
    w.data_ranges = {{kX264Ref, 0x2000},
                     {kX264Cur, 0x1000},
                     {kX264Pos, 0x1000},
                     {kX264Sad, 0x10000}};
    w.description = "video-encoder SAD motion search: 8x8 block vs " +
                    std::to_string(kX264Cands) +
                    " candidate positions in a 64x64 frame";
    w.profile = Profile::Compute;

    std::string row;
    for (u32 c = 0; c < kX264Blk; ++c) {
        row += "    lbu t1, " + std::to_string(c) + "(t3)\n";
        row += "    lbu t2, " + std::to_string(c) + "(t4)\n";
        row += "    sub t1, t1, t2\n"
               "    srai t2, t1, 31\n"
               "    xor t1, t1, t2\n"
               "    sub t1, t1, t2\n"   // |diff|
               "    add s10, s10, t1\n";
    }

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kX264Ref) + "\n" +
                   "    li s5, " + std::to_string(kX264Cur) + "\n" +
                   "    li s6, " + std::to_string(kX264Pos) + "\n" +
                   "    li s7, " + std::to_string(kX264Sad) + "\n" +
                   partitionBounds(kX264Cands) + R"(
    mv s9, s2
cand_loop:
    slli t0, s9, 3
    add t0, t0, s6
    lw t1, 0(t0)           # x
    lw t2, 4(t0)           # y
    slli t2, t2, 6         # y * 64
    add t1, t1, t2
    add t3, s4, t1         # ref window origin
    mv t4, s5              # cur block row
    li s10, 0              # sad
    li t5, )" + std::to_string(kX264Blk) + R"(
row_loop:
)" + row + R"(
    addi t3, t3, 64
    addi t4, t4, 8
    addi t5, t5, -1
    bnez t5, row_loop
    slli t0, s9, 2
    add t0, t0, s7
    sw s10, 0(t0)
    addi s9, s9, 1
    bne s9, s3, cand_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x264264);
        for (u32 i = 0; i < kX264RefW * kX264RefW; ++i)
            mem.write8(kX264Ref + i, static_cast<u8>(rng.below(256)));
        for (u32 i = 0; i < kX264Blk * kX264Blk; ++i)
            mem.write8(kX264Cur + i, static_cast<u8>(rng.below(256)));
        for (u32 p = 0; p < kX264Cands; ++p) {
            mem.write32(kX264Pos + 8 * p, static_cast<u32>(rng.below(
                                              kX264RefW - kX264Blk)));
            mem.write32(kX264Pos + 8 * p + 4,
                        static_cast<u32>(
                            rng.below(kX264RefW - kX264Blk)));
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 p = 0; p < kX264Cands; ++p) {
            const u32 x = mem.read32(kX264Pos + 8 * p);
            const u32 y = mem.read32(kX264Pos + 8 * p + 4);
            u32 want = 0;
            for (u32 r = 0; r < kX264Blk; ++r) {
                for (u32 c = 0; c < kX264Blk; ++c) {
                    const i32 a = mem.read8(
                        kX264Ref + (y + r) * kX264RefW + x + c);
                    const i32 b =
                        mem.read8(kX264Cur + r * kX264Blk + c);
                    want += static_cast<u32>(a > b ? a - b : b - a);
                }
            }
            if (mem.read32(kX264Sad + 4 * p) != want)
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// deepsjeng: bitboard mobility evaluation
// ---------------------------------------------------------------------

constexpr u32 kDsPos = 1536;
constexpr Addr kDsBoards = 0x100000;  // (lo, hi) word pairs
constexpr Addr kDsScore = 0x110000;   // evaluation per position

Workload
makeDeepsjeng()
{
    Workload w;
    w.name = "deepsjeng";
    w.suite = "spec";
    w.data_ranges = {{kDsBoards, 0x10000}, {kDsScore, 0x10000}};
    w.description = "chess-engine bitboard evaluation: popcounts, "
                    "shifted attack masks, branchy scoring";
    w.profile = Profile::Control;

    // Kernighan popcount of t1 into t2 (clobbers t3).
    const std::string popcnt = R"(
    li t2, 0
    beqz t1, pcdone%ID%
pcloop%ID%:
    addi t3, t1, -1
    and t1, t1, t3
    addi t2, t2, 1
    bnez t1, pcloop%ID%
pcdone%ID%:
)";
    auto instantiate = [&](const std::string &tmpl, const char *id) {
        std::string out = tmpl;
        size_t pos = 0;
        while ((pos = out.find("%ID%", pos)) != std::string::npos)
            out.replace(pos, 4, id);
        return out;
    };

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kDsBoards) + "\n" +
                   "    li s5, " + std::to_string(kDsScore) + "\n" +
                   partitionBounds(kDsPos) + R"(
    mv s9, s2
ploop:
    slli t0, s9, 3
    add t0, t0, s4
    lw s10, 0(t0)          # lo
    lw s11, 4(t0)          # hi
    # material: popcount(lo) * 3 + popcount(hi) * 5
    mv t1, s10
)" + instantiate(popcnt, "a") + R"(
    slli t4, t2, 1
    add t4, t4, t2         # * 3
    mv t1, s11
)" + instantiate(popcnt, "b") + R"(
    slli t5, t2, 2
    add t5, t5, t2         # * 5
    add t4, t4, t5
    # mobility: attacks = (lo << 1 | lo >> 1) & ~hi
    slli t1, s10, 1
    srli t2, s10, 1
    or t1, t1, t2
    not t2, s11
    and t1, t1, t2
)" + instantiate(popcnt, "c") + R"(
    add t4, t4, t2
    # king safety: penalize if hi has its top bit set
    bgez s11, safe
    addi t4, t4, -7
safe:
    # tempo: parity of the running score
    andi t1, t4, 1
    beqz t1, stash
    addi t4, t4, 1
stash:
    slli t0, s9, 2
    add t0, t0, s5
    sw t4, 0(t0)
    addi s9, s9, 1
    bne s9, s3, ploop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0xd5d5);
        for (u32 p = 0; p < kDsPos; ++p) {
            mem.write32(kDsBoards + 8 * p, rng.next32());
            mem.write32(kDsBoards + 8 * p + 4, rng.next32());
        }
    };

    w.check = [](const SparseMemory &mem) {
        auto pc = [](u32 v) {
            u32 n = 0;
            while (v) {
                v &= v - 1;
                ++n;
            }
            return n;
        };
        for (u32 p = 0; p < kDsPos; ++p) {
            const u32 lo = mem.read32(kDsBoards + 8 * p);
            const u32 hi = mem.read32(kDsBoards + 8 * p + 4);
            i32 score = static_cast<i32>(pc(lo) * 3 + pc(hi) * 5);
            score += static_cast<i32>(pc(((lo << 1) | (lo >> 1)) & ~hi));
            if (static_cast<i32>(hi) < 0)
                score -= 7;
            if (score & 1)
                score += 1;
            if (static_cast<i32>(mem.read32(kDsScore + 4 * p)) != score)
                return false;
        }
        return true;
    };
    return w;
}

} // namespace

Workload workloadMcf() { return makeMcf(); }
Workload workloadLbm() { return makeLbm(); }
Workload workloadX264() { return makeX264(); }
Workload workloadDeepsjeng() { return makeDeepsjeng(); }

} // namespace diag::workloads
