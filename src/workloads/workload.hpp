/**
 * @file
 * Workload framework. Each workload captures the dominant kernel of one
 * benchmark the paper evaluates (Rodinia / SPEC CPU2017 subsets, §7.1),
 * written in RISC-V assembly for our assembler, with a C++ input
 * initializer and an output check.
 *
 * Conventions shared by all kernels:
 *  - register a0 carries the thread id and a1 the thread count; the
 *    serial variant runs with a0=0, a1=1 (the paper cross-compiles one
 *    source and runs 1..N threads the same way);
 *  - partitionable kernels split their outer loop into contiguous
 *    [tid*N/n, (tid+1)*N/n) blocks with disjoint writes;
 *  - each thread ends with EBREAK; outputs live in named .data symbols.
 */
#ifndef DIAG_WORKLOADS_WORKLOAD_HPP
#define DIAG_WORKLOADS_WORKLOAD_HPP

#include <functional>
#include <string>
#include <vector>

#include "asm/program.hpp"

namespace diag::workloads
{

/** Workload behaviour classes, for reporting. */
enum class Profile : u8
{
    Compute,  //!< FP/ALU dominated, regular loops
    Memory,   //!< cache-miss dominated
    Control,  //!< branchy / irregular
    Mixed,
};

/** One benchmark kernel. */
struct Workload
{
    std::string name;
    std::string suite;        //!< "rodinia" or "spec"
    std::string description;
    Profile profile = Profile::Mixed;

    /** Serial / multithread kernel source (a0=tid, a1=nthreads). */
    std::string asm_serial;
    /** simt_s/simt_e-annotated variant; empty when not pipelineable
     *  (the paper identifies pipelineable regions manually, §5.4). */
    std::string asm_simt;
    /** False for kernels with unbreakable sequential dependences. */
    bool partitionable = true;

    /**
     * Declared data map: (base, bytes) ranges the kernel may touch in
     * addition to the program image chunks. Workload buffers live at
     * fixed addresses materialized with `li` rather than .data symbols,
     * so the verifier (diag-verify) needs this declaration to reason
     * about out-of-bounds accesses; ranges are forwarded into
     * analysis::VerifyOptions::extra_ranges.
     */
    std::vector<std::pair<Addr, u32>> data_ranges;

    /** Write input data into memory (after the program image loads). */
    std::function<void(SparseMemory &)> init;
    /** Validate outputs written by any correct execution. */
    std::function<bool(const SparseMemory &)> check;

    u64 max_insts = 100'000'000;
};

/** The Rodinia-class suite (12 kernels, Fig. 9 / Fig. 12). */
std::vector<Workload> rodiniaSuite();

/** The SPEC-CPU2017-class suite (8 kernels, Fig. 10). */
std::vector<Workload> specSuite();

/** Look up one workload by name across both suites. */
Workload findWorkload(const std::string &name);

/**
 * Non-fatal lookup for long-running callers (the service layer) that
 * must classify a bad name as a malformed request instead of exiting:
 * true and *out filled when @p name is bundled, false otherwise.
 */
bool tryFindWorkload(const std::string &name, Workload *out);

} // namespace diag::workloads

#endif // DIAG_WORKLOADS_WORKLOAD_HPP
