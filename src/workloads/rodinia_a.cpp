/**
 * @file
 * Rodinia-class workloads, part A: backprop, bfs, heartwall, hotspot.
 * Each kernel reproduces the dominant loop structure of its Rodinia
 * namesake (paper §7.2.1) on inputs sized for tractable RTL-class
 * simulation, the same methodology the paper uses (§7.1: reduced
 * inputs, projected results).
 */
#include "workloads/workload.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace diag::workloads
{

using detail::closeF32;
using detail::partitionBounds;
using detail::readF32;
using detail::writeF32;

// ---------------------------------------------------------------------
// backprop: neural-net layer forward pass (matrix-vector + activation)
// ---------------------------------------------------------------------

namespace
{

constexpr u32 kBpIn = 16;
constexpr u32 kBpOut = 1536;
constexpr Addr kBpW = 0x100000;     // weights [out][in], row stride 64B
constexpr Addr kBpInV = 0x120000;   // input vector
constexpr Addr kBpOutV = 0x121000;  // output vector
constexpr Addr kBpRes = 0x130000;   // per-thread partial sums

std::string
backpropTaps()
{
    // 16 unrolled weight taps against the preloaded input registers.
    std::string taps;
    for (u32 i = 0; i < kBpIn; ++i) {
        taps += "    flw ft0, " + std::to_string(4 * i) + "(t0)\n";
        taps += "    fmadd.s fa0, ft0, f" + std::to_string(16 + i) +
                ", fa0\n";
    }
    return taps;
}

std::string
backpropPrologue()
{
    std::string s;
    s += "_start:\n";
    s += "    li s4, " + std::to_string(kBpW) + "\n";
    s += "    li s5, " + std::to_string(kBpOutV) + "\n";
    s += "    li t0, " + std::to_string(kBpInV) + "\n";
    for (u32 i = 0; i < kBpIn; ++i)
        s += "    flw f" + std::to_string(16 + i) + ", " +
             std::to_string(4 * i) + "(t0)\n";
    s += "    li t1, 0x3f800000\n";
    s += "    fmv.w.x f15, t1\n";  // 1.0f
    s += partitionBounds(kBpOut);
    return s;
}

std::string
backpropEpilogue()
{
    return R"(
    # per-thread checksum over this thread's output block
    fmv.w.x fa2, x0
    mv s7, s2
csum:
    slli t1, s7, 2
    add t1, t1, s5
    flw ft0, 0(t1)
    fadd.s fa2, fa2, ft0
    addi s7, s7, 1
    bne s7, s3, csum
    li t2, )" + std::to_string(kBpRes) + R"(
    slli t3, a0, 2
    add t2, t2, t3
    fsw fa2, 0(t2)
    ebreak
)";
}

Workload
makeBackprop()
{
    Workload w;
    w.name = "backprop";
    w.suite = "rodinia";
    w.data_ranges = {{kBpW, 0x20000},
                     {kBpInV, 0x1000},
                     {kBpOutV, 0xf000},
                     {kBpRes, 0x10000}};
    w.description =
        "neural-net layer forward pass: 1536x16 matrix-vector FMA with "
        "rational-sigmoid activation";
    w.profile = Profile::Compute;

    w.asm_serial = backpropPrologue() + R"(
    mv s7, s2
jloop:
    slli t0, s7, 6
    add t0, t0, s4
    fmv.w.x fa0, x0
)" + backpropTaps() + R"(
    fabs.s fa1, fa0
    fadd.s fa1, fa1, f15
    fdiv.s fa0, fa0, fa1
    slli t1, s7, 2
    add t1, t1, s5
    fsw fa0, 0(t1)
    addi s7, s7, 1
    bne s7, s3, jloop
)" + backpropEpilogue();

    w.asm_simt = backpropPrologue() + R"(
    slli t3, s2, 2
    slli t5, s3, 2
    li t4, 4
head:
    simt_s t3, t4, t5, 1
    slli t0, t3, 4
    add t0, t0, s4
    fmv.w.x fa0, x0
)" + backpropTaps() + R"(
    fabs.s fa1, fa0
    fadd.s fa1, fa1, f15
    fdiv.s fa0, fa0, fa1
    add t1, t3, s5
    fsw fa0, 0(t1)
    simt_e t3, t5, head
)" + backpropEpilogue();

    w.init = [](SparseMemory &mem) {
        Rng rng(0xbac0bac0);
        for (u32 j = 0; j < kBpOut; ++j)
            for (u32 i = 0; i < kBpIn; ++i)
                writeF32(mem, kBpW + j * 64 + i * 4,
                         rng.uniform() * 2.0f - 1.0f);
        for (u32 i = 0; i < kBpIn; ++i)
            writeF32(mem, kBpInV + 4 * i, rng.uniform());
    };

    w.check = [](const SparseMemory &mem) {
        Rng rng(0xbac0bac0);
        std::vector<float> weights(kBpOut * kBpIn);
        for (auto &v : weights)
            v = rng.uniform() * 2.0f - 1.0f;
        float in[kBpIn];
        for (float &v : in)
            v = rng.uniform();
        for (u32 j = 0; j < kBpOut; ++j) {
            float acc = 0.0f;
            for (u32 i = 0; i < kBpIn; ++i)
                acc = std::fmaf(weights[j * kBpIn + i], in[i], acc);
            const float want = acc / (std::fabs(acc) + 1.0f);
            if (!closeF32(readF32(mem, kBpOutV + 4 * j), want))
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// bfs: level-synchronous breadth-first search over tiled CSR graphs
// ---------------------------------------------------------------------

constexpr u32 kBfsTiles = 48;
constexpr u32 kBfsTileNodes = 32;
constexpr u32 kBfsNodes = kBfsTiles * kBfsTileNodes;
constexpr u32 kBfsExtraPerNode = 3;
constexpr Addr kBfsRow = 0x100000;  // row offsets, kBfsNodes+1 words
constexpr Addr kBfsCol = 0x104000;  // edge targets
constexpr Addr kBfsDist = 0x110000; // distances (output)

struct BfsGraph
{
    std::vector<u32> row;
    std::vector<u32> col;
};

BfsGraph
bfsGraph()
{
    // Tiles are independent components: a ring through the tile's
    // nodes plus random intra-tile shortcuts.
    Rng rng(0xbf5bf5);
    BfsGraph g;
    std::vector<std::vector<u32>> adj(kBfsNodes);
    for (u32 t = 0; t < kBfsTiles; ++t) {
        const u32 base = t * kBfsTileNodes;
        for (u32 v = 0; v < kBfsTileNodes; ++v) {
            adj[base + v].push_back(base + (v + 1) % kBfsTileNodes);
            for (u32 e = 0; e < kBfsExtraPerNode; ++e)
                adj[base + v].push_back(
                    base + static_cast<u32>(rng.below(kBfsTileNodes)));
        }
    }
    for (u32 v = 0; v < kBfsNodes; ++v) {
        g.row.push_back(static_cast<u32>(g.col.size()));
        for (u32 n : adj[v])
            g.col.push_back(n);
    }
    g.row.push_back(static_cast<u32>(g.col.size()));
    return g;
}

Workload
makeBfs()
{
    Workload w;
    w.name = "bfs";
    w.suite = "rodinia";
    w.data_ranges = {{kBfsRow, 0x4000},
                     {kBfsCol, 0xc000},
                     {kBfsDist, 0x10000}};
    w.description = "level-synchronous BFS over " +
                    std::to_string(kBfsTiles) +
                    " independent CSR graph tiles (" +
                    std::to_string(kBfsNodes) + " nodes)";
    w.profile = Profile::Memory;

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kBfsRow) + "\n" +
                   "    li s5, " + std::to_string(kBfsCol) + "\n" +
                   "    li s6, " + std::to_string(kBfsDist) + "\n" +
                   partitionBounds(kBfsTiles) + R"(
tile_loop:
    li t0, )" + std::to_string(kBfsTileNodes) + R"(
    mul s9, s2, t0
    add s10, s9, t0
    li s11, 0
level_loop:
    li t5, 0
    mv t6, s9
vloop:
    slli t0, t6, 2
    add t0, t0, s6
    lw t1, 0(t0)
    bne t1, s11, vnext
    slli t0, t6, 2
    add t0, t0, s4
    lw t2, 0(t0)
    lw t3, 4(t0)
    bge t2, t3, vnext
eloop:
    slli t0, t2, 2
    add t0, t0, s5
    lw t4, 0(t0)
    slli t0, t4, 2
    add t0, t0, s6
    lw t1, 0(t0)
    bgez t1, edone
    addi t1, s11, 1
    sw t1, 0(t0)
    li t5, 1
edone:
    addi t2, t2, 1
    blt t2, t3, eloop
vnext:
    addi t6, t6, 1
    blt t6, s10, vloop
    addi s11, s11, 1
    bnez t5, level_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        const BfsGraph g = bfsGraph();
        for (size_t i = 0; i < g.row.size(); ++i)
            mem.write32(kBfsRow + 4 * static_cast<Addr>(i), g.row[i]);
        for (size_t i = 0; i < g.col.size(); ++i)
            mem.write32(kBfsCol + 4 * static_cast<Addr>(i), g.col[i]);
        for (u32 v = 0; v < kBfsNodes; ++v)
            mem.write32(kBfsDist + 4 * v,
                        v % kBfsTileNodes == 0 ? 0 : 0xffffffffu);
    };

    w.check = [](const SparseMemory &mem) {
        const BfsGraph g = bfsGraph();
        // Reference BFS.
        std::vector<i32> want(kBfsNodes, -1);
        for (u32 t = 0; t < kBfsTiles; ++t) {
            std::vector<u32> frontier{t * kBfsTileNodes};
            want[t * kBfsTileNodes] = 0;
            i32 level = 0;
            while (!frontier.empty()) {
                std::vector<u32> next;
                for (u32 v : frontier) {
                    for (u32 e = g.row[v]; e < g.row[v + 1]; ++e) {
                        const u32 n = g.col[e];
                        if (want[n] < 0) {
                            want[n] = level + 1;
                            next.push_back(n);
                        }
                    }
                }
                frontier = std::move(next);
                ++level;
            }
        }
        for (u32 v = 0; v < kBfsNodes; ++v) {
            if (static_cast<i32>(mem.read32(kBfsDist + 4 * v)) !=
                want[v])
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// heartwall: template SAD tracking over an image
// ---------------------------------------------------------------------

constexpr u32 kHwPos = 192;
constexpr u32 kHwImgW = 64;
constexpr u32 kHwTpl = 8;
constexpr Addr kHwImg = 0x100000;    // 64x64 floats
constexpr Addr kHwTplA = 0x108000;   // 8x8 floats
constexpr Addr kHwPosA = 0x109000;   // (x, y) word pairs
constexpr Addr kHwScore = 0x10a000;  // one float per position

Workload
makeHeartwall()
{
    Workload w;
    w.name = "heartwall";
    w.suite = "rodinia";
    w.data_ranges = {{kHwImg, 0x8000},
                     {kHwTplA, 0x1000},
                     {kHwPosA, 0x1000},
                     {kHwScore, 0x10000}};
    w.description = "template-matching SAD of an 8x8 template at 192 "
                    "image positions";
    w.profile = Profile::Compute;

    std::string row_body;
    for (u32 c = 0; c < kHwTpl; ++c) {
        row_body += "    flw ft0, " + std::to_string(4 * c) + "(t3)\n";
        row_body += "    flw ft1, " + std::to_string(4 * c) + "(t4)\n";
        row_body += "    fsub.s ft0, ft0, ft1\n";
        row_body += "    fabs.s ft0, ft0\n";
        row_body += "    fadd.s fa0, fa0, ft0\n";
    }

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kHwImg) + "\n" +
                   "    li s5, " + std::to_string(kHwTplA) + "\n" +
                   "    li s6, " + std::to_string(kHwPosA) + "\n" +
                   "    li s7, " + std::to_string(kHwScore) + "\n" +
                   partitionBounds(kHwPos) + R"(
    mv s9, s2
ploop:
    slli t0, s9, 3
    add t0, t0, s6
    lw t1, 0(t0)          # x
    lw t2, 4(t0)          # y
    slli t2, t2, 8        # y * 64 * 4
    slli t1, t1, 2
    add t3, s4, t2
    add t3, t3, t1        # image window origin
    mv t4, s5             # template row
    fmv.w.x fa0, x0
    li t5, )" + std::to_string(kHwTpl) + R"(
rloop:
)" + row_body + R"(
    addi t3, t3, 256      # next image row
    addi t4, t4, 32       # next template row
    addi t5, t5, -1
    bnez t5, rloop
    slli t0, s9, 2
    add t0, t0, s7
    fsw fa0, 0(t0)
    addi s9, s9, 1
    bne s9, s3, ploop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x4ea87);
        for (u32 i = 0; i < kHwImgW * kHwImgW; ++i)
            writeF32(mem, kHwImg + 4 * i, rng.uniform());
        for (u32 i = 0; i < kHwTpl * kHwTpl; ++i)
            writeF32(mem, kHwTplA + 4 * i, rng.uniform());
        for (u32 p = 0; p < kHwPos; ++p) {
            mem.write32(kHwPosA + 8 * p,
                        static_cast<u32>(rng.below(kHwImgW - kHwTpl)));
            mem.write32(kHwPosA + 8 * p + 4,
                        static_cast<u32>(rng.below(kHwImgW - kHwTpl)));
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 p = 0; p < kHwPos; ++p) {
            const u32 x = mem.read32(kHwPosA + 8 * p);
            const u32 y = mem.read32(kHwPosA + 8 * p + 4);
            float want = 0.0f;
            for (u32 r = 0; r < kHwTpl; ++r) {
                for (u32 c = 0; c < kHwTpl; ++c) {
                    const float img = readF32(
                        mem,
                        kHwImg + 4 * ((y + r) * kHwImgW + x + c));
                    const float tpl =
                        readF32(mem, kHwTplA + 4 * (r * kHwTpl + c));
                    want += std::fabs(img - tpl);
                }
            }
            if (!closeF32(readF32(mem, kHwScore + 4 * p), want))
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// hotspot: 5-point stencil thermal simulation over independent tiles
// ---------------------------------------------------------------------

constexpr u32 kHsTiles = 48;
constexpr u32 kHsRows = 6;    // per tile, including halo rows
constexpr u32 kHsCols = 32;   // including halo columns
constexpr u32 kHsSteps = 2;
constexpr u32 kHsTileBytes = kHsRows * kHsCols * 4;  // 0x500
constexpr Addr kHsT0 = 0x100000;
constexpr Addr kHsT1 = 0x110000;
constexpr Addr kHsPow = 0x120000;

Workload
makeHotspot()
{
    Workload w;
    w.name = "hotspot";
    w.suite = "rodinia";
    w.data_ranges = {{kHsT0, 0x10000},
                     {kHsT1, 0x10000},
                     {kHsPow, 0x10000}};
    w.description = "5-point stencil thermal simulation, " +
                    std::to_string(kHsTiles) + " tiles of " +
                    std::to_string(kHsRows) + "x" +
                    std::to_string(kHsCols) + ", " +
                    std::to_string(kHsSteps) +
                    " time steps, double buffered";
    w.profile = Profile::Compute;

    // Coefficients: cc = 0.1 (diffusion), cp = 0.05 (power), -4.0.
    const std::string prologue =
        "_start:\n"
        "    li t1, 0x3dcccccd\n"   // 0.1f
        "    fmv.w.x f13, t1\n"
        "    li t1, 0x3d4ccccd\n"   // 0.05f
        "    fmv.w.x f12, t1\n"
        "    li t1, 0xc0800000\n"   // -4.0f
        "    fmv.w.x f11, t1\n" +
        partitionBounds(kHsTiles);

    // Shared per-cell stencil body. Expects t3 = &src[cell],
    // t4 = &dst[cell], t5 = &power[cell]; clobbers ft0..ft5.
    const std::string cell =
        "    flw ft0, 0(t3)\n"                        // t
        "    flw ft1, -128(t3)\n"                     // north (row-32)
        "    flw ft2, 128(t3)\n"                      // south
        "    flw ft3, -4(t3)\n"                       // west
        "    flw ft4, 4(t3)\n"                        // east
        "    fadd.s ft1, ft1, ft2\n"
        "    fadd.s ft1, ft1, ft3\n"
        "    fadd.s ft1, ft1, ft4\n"
        "    fmadd.s ft1, f11, ft0, ft1\n"            // sum - 4t
        "    flw ft5, 0(t5)\n"
        "    fmadd.s ft0, f13, ft1, ft0\n"            // t + cc*sum
        "    fmadd.s ft0, f12, ft5, ft0\n"            // + cp*p
        "    fsw ft0, 0(t4)\n";

    w.asm_serial = prologue + R"(
tile_loop:
    li t0, )" + std::to_string(kHsTileBytes) + R"(
    mul s9, s2, t0
    li s4, )" + std::to_string(kHsT0) + R"(
    add s4, s4, s9         # src tile
    li s5, )" + std::to_string(kHsT1) + R"(
    add s5, s5, s9         # dst tile
    li s6, )" + std::to_string(kHsPow) + R"(
    add s6, s6, s9         # power tile
    li s10, )" + std::to_string(kHsSteps) + R"(
step_loop:
    li s11, 1              # row (interior)
row_loop:
    slli t0, s11, 7        # row * 32 * 4
    addi t0, t0, 4         # first interior column
    add t3, s4, t0
    add t4, s5, t0
    add t5, s6, t0
    li t6, )" + std::to_string(kHsCols - 2) + R"(
col_loop:
)" + cell + R"(
    addi t3, t3, 4
    addi t4, t4, 4
    addi t5, t5, 4
    addi t6, t6, -1
    bnez t6, col_loop
    addi s11, s11, 1
    li t0, )" + std::to_string(kHsRows - 1) + R"(
    bne s11, t0, row_loop
    # swap src/dst
    mv t0, s4
    mv s4, s5
    mv s5, t0
    addi s10, s10, -1
    bnez s10, step_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    // SIMT variant: each (tile, step, row) interior column sweep is a
    // simt region; rc walks the column byte offset within the row.
    w.asm_simt = prologue + R"(
tile_loop:
    li t0, )" + std::to_string(kHsTileBytes) + R"(
    mul s9, s2, t0
    li s4, )" + std::to_string(kHsT0) + R"(
    add s4, s4, s9
    li s5, )" + std::to_string(kHsT1) + R"(
    add s5, s5, s9
    li s6, )" + std::to_string(kHsPow) + R"(
    add s6, s6, s9
    li s10, )" + std::to_string(kHsSteps) + R"(
step_loop:
    li s11, 1                  # interior row
row_loop:
    slli t0, s11, 7            # row * 32 cols * 4B
    addi t0, t0, 4             # first interior column
    add a5, s4, t0             # src row
    add a6, s5, t0             # dst row
    add a7, s6, t0             # power row
    li a2, 0                   # rc: column byte offset
    li a3, 4
    li a4, )" + std::to_string((kHsCols - 2) * 4) + R"(
head:
    simt_s a2, a3, a4, 1
    add t3, a5, a2
    add t4, a6, a2
    add t5, a7, a2
)" + cell + R"(
    simt_e a2, a4, head
    addi s11, s11, 1
    li t0, )" + std::to_string(kHsRows - 1) + R"(
    bne s11, t0, row_loop
    mv t0, s4
    mv s4, s5
    mv s5, t0
    addi s10, s10, -1
    bnez s10, step_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x407507);
        for (u32 t = 0; t < kHsTiles; ++t) {
            const Addr base = t * kHsTileBytes;
            for (u32 i = 0; i < kHsRows * kHsCols; ++i) {
                writeF32(mem, kHsT0 + base + 4 * i,
                         300.0f + 10.0f * rng.uniform());
                writeF32(mem, kHsT1 + base + 4 * i, 0.0f);
                writeF32(mem, kHsPow + base + 4 * i, rng.uniform());
            }
        }
    };

    w.check = [](const SparseMemory &mem) {
        // Reference: same arithmetic order as the kernel.
        Rng rng(0x407507);
        const u32 cells = kHsRows * kHsCols;
        std::vector<float> src(kHsTiles * cells);
        std::vector<float> pow_in(kHsTiles * cells);
        for (u32 t = 0; t < kHsTiles; ++t) {
            for (u32 i = 0; i < cells; ++i) {
                src[t * cells + i] = 300.0f + 10.0f * rng.uniform();
                pow_in[t * cells + i] = rng.uniform();
            }
        }
        std::vector<float> dst(kHsTiles * cells, 0.0f);
        for (u32 t = 0; t < kHsTiles; ++t) {
            float *s = &src[t * cells];
            float *d = &dst[t * cells];
            const float *p = &pow_in[t * cells];
            for (u32 step = 0; step < kHsSteps; ++step) {
                for (u32 r = 1; r + 1 < kHsRows; ++r) {
                    for (u32 c = 1; c + 1 < kHsCols; ++c) {
                        const u32 i = r * kHsCols + c;
                        float sum = s[i - kHsCols] + s[i + kHsCols];
                        sum += s[i - 1];
                        sum += s[i + 1];
                        sum = std::fmaf(-4.0f, s[i], sum);
                        float v = std::fmaf(0.1f, sum, s[i]);
                        v = std::fmaf(0.05f, p[i], v);
                        d[i] = v;
                    }
                }
                std::swap(s, d);
            }
        }
        // After 3 steps (odd), results live in the T1 buffer... the
        // swapped pointer: s now points at the latest data.
        for (u32 t = 0; t < kHsTiles; ++t) {
            const Addr base =
                (kHsSteps % 2 ? kHsT1 : kHsT0) + t * kHsTileBytes;
            const float *latest =
                (kHsSteps % 2) ? &dst[t * cells] : &src[t * cells];
            // After an odd number of steps the final values are in the
            // dst buffer of the last step. Because of the swap logic,
            // pick whichever holds the freshest interior data.
            for (u32 r = 1; r + 1 < kHsRows; ++r) {
                for (u32 c = 1; c + 1 < kHsCols; ++c) {
                    const u32 i = r * kHsCols + c;
                    if (!closeF32(readF32(mem, base + 4 * i),
                                  latest[i]))
                        return false;
                }
            }
        }
        return true;
    };
    return w;
}

} // namespace

// Factories used by suites.cpp.
Workload workloadBackprop() { return makeBackprop(); }
Workload workloadBfs() { return makeBfs(); }
Workload workloadHeartwall() { return makeHeartwall(); }
Workload workloadHotspot() { return makeHotspot(); }

} // namespace diag::workloads
