/**
 * @file
 * Rodinia-class workloads, part B: kmeans, lavamd, lud, nn.
 */
#include "workloads/workload.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace diag::workloads
{

using detail::closeF32;
using detail::partitionBounds;
using detail::readF32;
using detail::writeF32;

namespace
{

// ---------------------------------------------------------------------
// kmeans: nearest-centroid assignment (2-D points, 4 centroids)
// ---------------------------------------------------------------------

constexpr u32 kKmPoints = 768;
constexpr u32 kKmK = 4;
constexpr Addr kKmPts = 0x100000;     // x,y float pairs (stride 8)
constexpr Addr kKmCent = 0x104000;    // 4 centroid pairs
constexpr Addr kKmAssign = 0x105000;  // best-centroid index per point

/** Distance + argmin body. Expects point in ft0/ft1; result in t2. */
std::string
kmeansBody()
{
    std::string s;
    s += "    fsub.s ft2, ft0, f16\n"
         "    fsub.s ft3, ft1, f17\n"
         "    fmul.s fa0, ft2, ft2\n"
         "    fmadd.s fa0, ft3, ft3, fa0\n"
         "    li t2, 0\n";
    for (u32 k = 1; k < kKmK; ++k) {
        const std::string cx = "f" + std::to_string(16 + 2 * k);
        const std::string cy = "f" + std::to_string(17 + 2 * k);
        const std::string skip = "knext" + std::to_string(k);
        s += "    fsub.s ft2, ft0, " + cx + "\n";
        s += "    fsub.s ft3, ft1, " + cy + "\n";
        s += "    fmul.s fa1, ft2, ft2\n";
        s += "    fmadd.s fa1, ft3, ft3, fa1\n";
        s += "    flt.s t3, fa1, fa0\n";
        s += "    beqz t3, " + skip + "\n";
        if (k + 1 < kKmK)  // the last min is never compared again
            s += "    fmv.s fa0, fa1\n";
        s += "    li t2, " + std::to_string(k) + "\n";
        s += skip + ":\n";
    }
    return s;
}

std::string
kmeansPrologue()
{
    std::string s = "_start:\n";
    s += "    li t0, " + std::to_string(kKmCent) + "\n";
    for (u32 k = 0; k < kKmK; ++k) {
        s += "    flw f" + std::to_string(16 + 2 * k) + ", " +
             std::to_string(8 * k) + "(t0)\n";
        s += "    flw f" + std::to_string(17 + 2 * k) + ", " +
             std::to_string(8 * k + 4) + "(t0)\n";
    }
    s += "    li s4, " + std::to_string(kKmPts) + "\n";
    s += "    li s5, " + std::to_string(kKmAssign) + "\n";
    s += partitionBounds(kKmPoints);
    return s;
}

Workload
makeKmeans()
{
    Workload w;
    w.name = "kmeans";
    w.suite = "rodinia";
    w.data_ranges = {{kKmPts, 0x4000},
                     {kKmCent, 0x1000},
                     {kKmAssign, 0x10000}};
    w.description = "nearest-centroid assignment of 768 2-D points to "
                    "4 centroids (distance + argmin)";
    w.profile = Profile::Compute;

    w.asm_serial = kmeansPrologue() + R"(
    mv s7, s2
ploop:
    slli t0, s7, 3
    add t0, t0, s4
    flw ft0, 0(t0)
    flw ft1, 4(t0)
)" + kmeansBody() + R"(
    slli t0, s7, 2
    add t0, t0, s5
    sw t2, 0(t0)
    addi s7, s7, 1
    bne s7, s3, ploop
    ebreak
)";

    w.asm_simt = kmeansPrologue() + R"(
    slli t4, s2, 2
    slli t6, s3, 2
    li t5, 4
head:
    simt_s t4, t5, t6, 1
    slli t0, t4, 1         # point byte offset = index4 * 2
    add t0, t0, s4
    flw ft0, 0(t0)
    flw ft1, 4(t0)
)" + kmeansBody() + R"(
    add t0, t4, s5
    sw t2, 0(t0)
    simt_e t4, t6, head
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x5ee5);
        for (u32 p = 0; p < kKmPoints; ++p) {
            writeF32(mem, kKmPts + 8 * p, rng.uniform() * 10.0f);
            writeF32(mem, kKmPts + 8 * p + 4, rng.uniform() * 10.0f);
        }
        const float cx[kKmK] = {2.0f, 8.0f, 2.5f, 7.5f};
        const float cy[kKmK] = {2.0f, 2.0f, 8.0f, 8.5f};
        for (u32 k = 0; k < kKmK; ++k) {
            writeF32(mem, kKmCent + 8 * k, cx[k]);
            writeF32(mem, kKmCent + 8 * k + 4, cy[k]);
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 p = 0; p < kKmPoints; ++p) {
            const float x = readF32(mem, kKmPts + 8 * p);
            const float y = readF32(mem, kKmPts + 8 * p + 4);
            u32 best = 0;
            float best_d = 1e30f;
            for (u32 k = 0; k < kKmK; ++k) {
                const float dx = x - readF32(mem, kKmCent + 8 * k);
                const float dy = y - readF32(mem, kKmCent + 8 * k + 4);
                const float d = std::fmaf(dy, dy, dx * dx);
                if (d < best_d) {
                    best_d = d;
                    best = k;
                }
            }
            if (mem.read32(kKmAssign + 4 * p) != best)
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// lavamd: all-pairs particle interactions (cutoff-free N-body step)
// ---------------------------------------------------------------------

constexpr u32 kLmN = 96;
constexpr Addr kLmPart = 0x100000;   // x,y,z,q per particle (stride 16)
constexpr Addr kLmForce = 0x101000;  // fx,fy,fz,pad (stride 16)

Workload
makeLavamd()
{
    Workload w;
    w.name = "lavamd";
    w.suite = "rodinia";
    w.data_ranges = {{kLmPart, 0x1000}, {kLmForce, 0x10000}};
    w.description = "all-pairs particle force accumulation (" +
                    std::to_string(kLmN) +
                    " bodies, inverse-square with softening)";
    w.profile = Profile::Compute;

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kLmPart) + "\n" +
                   "    li s5, " + std::to_string(kLmForce) + "\n" +
                   "    li t1, 0x3dcccccd\n"  // softening 0.1f
                   "    fmv.w.x f15, t1\n" +
                   partitionBounds(kLmN) + R"(
    mv s7, s2
iloop:
    slli t0, s7, 4
    add t0, t0, s4
    flw f16, 0(t0)         # xi
    flw f17, 4(t0)         # yi
    flw f18, 8(t0)         # zi
    fmv.w.x fa0, x0        # fx
    fmv.w.x fa1, x0        # fy
    fmv.w.x fa2, x0        # fz
    li s9, 0
jloop:
    slli t0, s9, 4
    add t0, t0, s4
    flw ft0, 0(t0)
    flw ft1, 4(t0)
    flw ft2, 8(t0)
    flw ft3, 12(t0)        # qj
    fsub.s ft0, ft0, f16   # dx
    fsub.s ft1, ft1, f17   # dy
    fsub.s ft2, ft2, f18   # dz
    fmul.s ft4, ft0, ft0
    fmadd.s ft4, ft1, ft1, ft4
    fmadd.s ft4, ft2, ft2, ft4
    fadd.s ft4, ft4, f15   # r2 + eps
    fdiv.s ft4, ft3, ft4   # q / r2
    fmadd.s fa0, ft4, ft0, fa0
    fmadd.s fa1, ft4, ft1, fa1
    fmadd.s fa2, ft4, ft2, fa2
    addi s9, s9, 1
    li t0, )" + std::to_string(kLmN) + R"(
    bne s9, t0, jloop
    slli t0, s7, 4
    add t0, t0, s5
    fsw fa0, 0(t0)
    fsw fa1, 4(t0)
    fsw fa2, 8(t0)
    addi s7, s7, 1
    bne s7, s3, iloop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x1a7a);
        for (u32 p = 0; p < kLmN; ++p) {
            for (u32 d = 0; d < 3; ++d)
                writeF32(mem, kLmPart + 16 * p + 4 * d,
                         rng.uniform() * 4.0f - 2.0f);
            writeF32(mem, kLmPart + 16 * p + 12,
                     rng.uniform() + 0.5f);
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 i = 0; i < kLmN; ++i) {
            const float xi = readF32(mem, kLmPart + 16 * i);
            const float yi = readF32(mem, kLmPart + 16 * i + 4);
            const float zi = readF32(mem, kLmPart + 16 * i + 8);
            float fx = 0.0f;
            float fy = 0.0f;
            float fz = 0.0f;
            for (u32 j = 0; j < kLmN; ++j) {
                const float dx = readF32(mem, kLmPart + 16 * j) - xi;
                const float dy =
                    readF32(mem, kLmPart + 16 * j + 4) - yi;
                const float dz =
                    readF32(mem, kLmPart + 16 * j + 8) - zi;
                const float q = readF32(mem, kLmPart + 16 * j + 12);
                float r2 = dx * dx;
                r2 = std::fmaf(dy, dy, r2);
                r2 = std::fmaf(dz, dz, r2);
                r2 += 0.1f;
                const float s = q / r2;
                fx = std::fmaf(s, dx, fx);
                fy = std::fmaf(s, dy, fy);
                fz = std::fmaf(s, dz, fz);
            }
            if (!closeF32(readF32(mem, kLmForce + 16 * i), fx) ||
                !closeF32(readF32(mem, kLmForce + 16 * i + 4), fy) ||
                !closeF32(readF32(mem, kLmForce + 16 * i + 8), fz))
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// lud: in-place LU decomposition (Doolittle, no pivoting)
// ---------------------------------------------------------------------

constexpr u32 kLudN = 32;
constexpr Addr kLudA = 0x100000;  // NxN floats, row stride 128B

Workload
makeLud()
{
    Workload w;
    w.name = "lud";
    w.suite = "rodinia";
    w.data_ranges = {{kLudA, 0x10000}};
    w.description = "in-place 32x32 LU decomposition (Doolittle, "
                    "sequential dependences)";
    w.profile = Profile::Compute;
    w.partitionable = false;  // k-loop carries strict dependences

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kLudA) + "\n" + R"(
    li s5, 0               # k
kloop:
    # pivot = a[k][k]
    slli t0, s5, 7
    slli t1, s5, 2
    add t0, t0, t1
    add t0, t0, s4
    flw f15, 0(t0)         # pivot
    addi s6, s5, 1         # i = k+1
    li t6, )" + std::to_string(kLudN) + R"(
    bge s6, t6, knext
iloop:
    # a[i][k] /= pivot
    slli t0, s6, 7
    slli t1, s5, 2
    add t0, t0, t1
    add t0, t0, s4         # &a[i][k]
    flw ft0, 0(t0)
    fdiv.s ft0, ft0, f15
    fsw ft0, 0(t0)
    # row update: a[i][j] -= a[i][k] * a[k][j] for j in (k, N)
    addi s7, s5, 1         # j
    slli t2, s6, 7
    add t2, t2, s4         # row i base
    slli t3, s5, 7
    add t3, t3, s4         # row k base
jloop:
    slli t4, s7, 2
    add t5, t2, t4
    add t4, t3, t4
    flw ft1, 0(t5)
    flw ft2, 0(t4)
    fnmsub.s ft1, ft0, ft2, ft1   # ft1 - ft0*ft2
    fsw ft1, 0(t5)
    addi s7, s7, 1
    blt s7, t6, jloop
    addi s6, s6, 1
    blt s6, t6, iloop
knext:
    addi s5, s5, 1
    addi t0, t6, -1
    blt s5, t0, kloop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x10d);
        for (u32 i = 0; i < kLudN; ++i) {
            for (u32 j = 0; j < kLudN; ++j) {
                float v = rng.uniform() * 2.0f - 1.0f;
                if (i == j)
                    v += static_cast<float>(kLudN);  // diag dominance
                writeF32(mem, kLudA + 128 * i + 4 * j, v);
            }
        }
    };

    w.check = [](const SparseMemory &mem) {
        // Recompute the factorization in the same order.
        Rng rng(0x10d);
        float a[kLudN][kLudN];
        for (u32 i = 0; i < kLudN; ++i) {
            for (u32 j = 0; j < kLudN; ++j) {
                a[i][j] = rng.uniform() * 2.0f - 1.0f;
                if (i == j)
                    a[i][j] += static_cast<float>(kLudN);
            }
        }
        for (u32 k = 0; k + 1 < kLudN; ++k) {
            for (u32 i = k + 1; i < kLudN; ++i) {
                a[i][k] /= a[k][k];
                for (u32 j = k + 1; j < kLudN; ++j)
                    a[i][j] = std::fmaf(-a[i][k], a[k][j], a[i][j]);
            }
        }
        for (u32 i = 0; i < kLudN; ++i)
            for (u32 j = 0; j < kLudN; ++j)
                if (!closeF32(readF32(mem, kLudA + 128 * i + 4 * j),
                              a[i][j], 1e-3f))
                    return false;
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// nn: nearest-neighbor distance computation + per-thread reduction
// ---------------------------------------------------------------------

constexpr u32 kNnR = 1536;
constexpr Addr kNnRec = 0x100000;   // x,y pairs (stride 8)
constexpr Addr kNnDist = 0x110000;  // one float per record
constexpr Addr kNnMin = 0x118000;   // per-thread (min, index) pairs
constexpr float kNnQx = 4.5f;
constexpr float kNnQy = 5.25f;

std::string
nnPrologue()
{
    return "_start:\n"
           "    li s4, " + std::to_string(kNnRec) + "\n" +
           "    li s5, " + std::to_string(kNnDist) + "\n" +
           "    li t1, 0x40900000\n"   // 4.5f
           "    fmv.w.x f14, t1\n" +
           "    li t1, 0x40a80000\n"   // 5.25f
           "    fmv.w.x f15, t1\n" +
           partitionBounds(kNnR);
}

std::string
nnReduce()
{
    return R"(
    # per-thread nearest record over [s2, s3)
    li t1, 0x7f000000      # +huge
    fmv.w.x fa0, t1
    li s9, 0               # best index
    mv s7, s2
mloop:
    slli t0, s7, 2
    add t0, t0, s5
    flw ft0, 0(t0)
    flt.s t3, ft0, fa0
    beqz t3, mnext
    fmv.s fa0, ft0
    mv s9, s7
mnext:
    addi s7, s7, 1
    bne s7, s3, mloop
    li t0, )" + std::to_string(kNnMin) + R"(
    slli t1, a0, 3
    add t0, t0, t1
    fsw fa0, 0(t0)
    sw s9, 4(t0)
    ebreak
)";
}

Workload
makeNn()
{
    Workload w;
    w.name = "nn";
    w.suite = "rodinia";
    w.data_ranges = {{kNnRec, 0x10000},
                     {kNnDist, 0x8000},
                     {kNnMin, 0x8000}};
    w.description = "k-nearest-neighbor distance kernel: euclidean "
                    "distance of 1536 records to a query + min scan";
    w.profile = Profile::Mixed;

    w.asm_serial = nnPrologue() + R"(
    mv s7, s2
dloop:
    slli t0, s7, 3
    add t0, t0, s4
    flw ft0, 0(t0)
    flw ft1, 4(t0)
    fsub.s ft0, ft0, f14
    fsub.s ft1, ft1, f15
    fmul.s ft2, ft0, ft0
    fmadd.s ft2, ft1, ft1, ft2
    fsqrt.s ft2, ft2
    slli t0, s7, 2
    add t0, t0, s5
    fsw ft2, 0(t0)
    addi s7, s7, 1
    bne s7, s3, dloop
)" + nnReduce();

    w.asm_simt = nnPrologue() + R"(
    slli t4, s2, 2
    slli t6, s3, 2
    li t5, 4
head:
    simt_s t4, t5, t6, 1
    slli t0, t4, 1
    add t0, t0, s4
    flw ft0, 0(t0)
    flw ft1, 4(t0)
    fsub.s ft0, ft0, f14
    fsub.s ft1, ft1, f15
    fmul.s ft2, ft0, ft0
    fmadd.s ft2, ft1, ft1, ft2
    fsqrt.s ft2, ft2
    add t0, t4, s5
    fsw ft2, 0(t0)
    simt_e t4, t6, head
)" + nnReduce();

    w.init = [](SparseMemory &mem) {
        Rng rng(0x22aa);
        for (u32 r = 0; r < kNnR; ++r) {
            writeF32(mem, kNnRec + 8 * r, rng.uniform() * 10.0f);
            writeF32(mem, kNnRec + 8 * r + 4, rng.uniform() * 10.0f);
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 r = 0; r < kNnR; ++r) {
            const float dx = readF32(mem, kNnRec + 8 * r) - kNnQx;
            const float dy = readF32(mem, kNnRec + 8 * r + 4) - kNnQy;
            const float want =
                std::sqrt(std::fmaf(dy, dy, dx * dx));
            if (!closeF32(readF32(mem, kNnDist + 4 * r), want))
                return false;
        }
        return true;
    };
    return w;
}

} // namespace

Workload workloadKmeans() { return makeKmeans(); }
Workload workloadLavamd() { return makeLavamd(); }
Workload workloadLud() { return makeLud(); }
Workload workloadNn() { return makeNn(); }

} // namespace diag::workloads
