/**
 * @file
 * Shared helpers for workload construction: thread partition prologue,
 * float<->memory conversions, and tolerant float comparison for output
 * checks.
 */
#ifndef DIAG_WORKLOADS_COMMON_HPP
#define DIAG_WORKLOADS_COMMON_HPP

#include <bit>
#include <cmath>
#include <string>

#include "common/sparse_mem.hpp"
#include "common/types.hpp"

namespace diag::workloads::detail
{

/**
 * Assembly prologue computing this thread's contiguous block of an
 * N-iteration outer loop: start in s2, end in s3. Uses t0/t1.
 * Expects a0 = tid, a1 = nthreads. Balanced split:
 * [tid*N/n, (tid+1)*N/n), so block sizes differ by at most one.
 */
inline std::string
partitionBounds(u32 n)
{
    return "    li t0, " + std::to_string(n) +
           "\n"
           "    mul t1, a0, t0\n"
           "    divu s2, t1, a1\n"
           "    addi t1, a0, 1\n"
           "    mul t1, t1, t0\n"
           "    divu s3, t1, a1\n";
}

inline void
writeF32(SparseMemory &mem, Addr addr, float value)
{
    mem.write32(addr, std::bit_cast<u32>(value));
}

inline float
readF32(const SparseMemory &mem, Addr addr)
{
    return std::bit_cast<float>(mem.read32(addr));
}

/** Relative/absolute tolerance float comparison for output checks. */
inline bool
closeF32(float got, float want, float tol = 1e-4f)
{
    if (std::isnan(got) || std::isnan(want))
        return false;
    const float diff = std::fabs(got - want);
    return diff <= tol * (1.0f + std::fabs(want));
}

} // namespace diag::workloads::detail

#endif // DIAG_WORKLOADS_COMMON_HPP
