/**
 * @file
 * SPEC-CPU2017-class workloads, part B: leela, nab, xz, imagick.
 */
#include "workloads/workload.hpp"

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "workloads/common.hpp"

namespace diag::workloads
{

using detail::closeF32;
using detail::partitionBounds;
using detail::readF32;
using detail::writeF32;

namespace
{

// ---------------------------------------------------------------------
// leela: Monte-Carlo playout kernel (RNG-driven board mutation)
// ---------------------------------------------------------------------

constexpr u32 kLlPlayouts = 192;
constexpr u32 kLlSteps = 64;
constexpr u32 kLlBoard = 256;        // cells per playout board
constexpr Addr kLlBoards = 0x100000; // one board per playout (1KB)
constexpr Addr kLlOut = 0x140000;    // score per playout
constexpr u32 kLlSeedBase = 0x1234567;

Workload
makeLeela()
{
    Workload w;
    w.name = "leela";
    w.suite = "spec";
    w.data_ranges = {{kLlBoards, 0x40000}, {kLlOut, 0x10000}};
    w.description = "Go-engine Monte-Carlo playouts: xorshift RNG "
                    "driving random board mutations and scoring";
    w.profile = Profile::Control;

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kLlBoards) + "\n" +
                   "    li s5, " + std::to_string(kLlOut) + "\n" +
                   partitionBounds(kLlPlayouts) + R"(
    mv s9, s2
playout:
    slli t0, s9, 10
    add s10, s4, t0        # this playout's board
    li t0, )" + std::to_string(kLlSeedBase) + R"(
    add s11, t0, s9        # rng state
    li s6, 0               # score
    li s7, )" + std::to_string(kLlSteps) + R"(
step:
    # xorshift32
    slli t0, s11, 13
    xor s11, s11, t0
    srli t0, s11, 17
    xor s11, s11, t0
    slli t0, s11, 5
    xor s11, s11, t0
    # pick a cell and mutate it
    andi t1, s11, )" + std::to_string(kLlBoard - 1) + R"(
    slli t1, t1, 2
    add t1, t1, s10
    lw t2, 0(t1)
    xor t2, t2, s11
    sw t2, 0(t1)
    # score: count when the mutated cell looks "alive"
    andi t3, t2, 3
    beqz t3, dead
    addi s6, s6, 1
dead:
    addi s7, s7, -1
    bnez s7, step
    slli t0, s9, 2
    add t0, t0, s5
    sw s6, 0(t0)
    addi s9, s9, 1
    bne s9, s3, playout
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x1ee1a);
        for (u32 p = 0; p < kLlPlayouts; ++p)
            for (u32 c = 0; c < kLlBoard; ++c)
                mem.write32(kLlBoards + 1024 * p + 4 * c,
                            rng.next32());
    };

    w.check = [](const SparseMemory &mem) {
        Rng rng(0x1ee1a);
        std::vector<u32> boards(kLlPlayouts * kLlBoard);
        for (auto &v : boards)
            v = rng.next32();
        for (u32 p = 0; p < kLlPlayouts; ++p) {
            u32 state = kLlSeedBase + p;
            u32 score = 0;
            for (u32 s = 0; s < kLlSteps; ++s) {
                state ^= state << 13;
                state ^= state >> 17;
                state ^= state << 5;
                const u32 cell = state & (kLlBoard - 1);
                u32 &v = boards[p * kLlBoard + cell];
                v ^= state;
                if (v & 3)
                    ++score;
            }
            if (mem.read32(kLlOut + 4 * p) != score)
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// nab: molecular-dynamics bonded forces (2 neighbors per atom)
// ---------------------------------------------------------------------

constexpr u32 kNabAtoms = 768;
constexpr Addr kNabPos = 0x100000;   // x,y,z,q per atom (stride 16)
constexpr Addr kNabNbr = 0x110000;   // 2 neighbor indices per atom
constexpr Addr kNabF = 0x120000;     // force magnitude sums (1 float)

Workload
makeNab()
{
    Workload w;
    w.name = "nab";
    w.suite = "spec";
    w.data_ranges = {{kNabPos, 0x10000},
                     {kNabNbr, 0x10000},
                     {kNabF, 0x10000}};
    w.description = "molecular-dynamics bonded interactions: distance "
                    "+ softened Coulomb for 2 bonds per atom";
    w.profile = Profile::Compute;

    const std::string prologue =
        "_start:\n"
        "    li s4, " + std::to_string(kNabPos) + "\n" +
        "    li s5, " + std::to_string(kNabNbr) + "\n" +
        "    li s6, " + std::to_string(kNabF) + "\n" +
        "    li t1, 0x3dcccccd\n"   // eps 0.1f
        "    fmv.w.x f15, t1\n" +
        partitionBounds(kNabAtoms);

    // One bonded interaction: neighbor index in t2; accumulates fa0.
    // Expects own position in f16/f17/f18.
    const std::string bond = R"(
    slli t3, t2, 4
    add t3, t3, s4
    flw ft0, 0(t3)
    flw ft1, 4(t3)
    flw ft2, 8(t3)
    flw ft3, 12(t3)
    fsub.s ft0, ft0, f16
    fsub.s ft1, ft1, f17
    fsub.s ft2, ft2, f18
    fmul.s ft4, ft0, ft0
    fmadd.s ft4, ft1, ft1, ft4
    fmadd.s ft4, ft2, ft2, ft4
    fsqrt.s ft5, ft4
    fadd.s ft4, ft4, f15
    fdiv.s ft3, ft3, ft4
    fmadd.s fa0, ft3, ft5, fa0
)";

    const std::string atom_body =
        "    slli t0, s9, 4\n"
        "    add t0, t0, s4\n"
        "    flw f16, 0(t0)\n"
        "    flw f17, 4(t0)\n"
        "    flw f18, 8(t0)\n"
        "    fmv.w.x fa0, x0\n"
        "    slli t0, s9, 3\n"
        "    add t0, t0, s5\n"
        "    lw t2, 0(t0)\n" +
        bond +
        "    lw t2, 4(t0)\n" + bond +
        "    slli t0, s9, 2\n"
        "    add t0, t0, s6\n"
        "    fsw fa0, 0(t0)\n";

    w.asm_serial = prologue + R"(
    mv s9, s2
aloop:
)" + atom_body + R"(
    addi s9, s9, 1
    bne s9, s3, aloop
    ebreak
)";

    w.asm_simt = prologue + R"(
    mv s10, s2
    li s11, 1
head:
    simt_s s10, s11, s3, 1
    mv s9, s10
)" + atom_body + R"(
    simt_e s10, s3, head
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x0ab0ab);
        for (u32 a = 0; a < kNabAtoms; ++a) {
            for (u32 d = 0; d < 3; ++d)
                writeF32(mem, kNabPos + 16 * a + 4 * d,
                         rng.uniform() * 6.0f - 3.0f);
            writeF32(mem, kNabPos + 16 * a + 12,
                     rng.uniform() * 2.0f - 1.0f);
            mem.write32(kNabNbr + 8 * a,
                        static_cast<u32>(rng.below(kNabAtoms)));
            mem.write32(kNabNbr + 8 * a + 4,
                        static_cast<u32>(rng.below(kNabAtoms)));
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 a = 0; a < kNabAtoms; ++a) {
            const float xi = readF32(mem, kNabPos + 16 * a);
            const float yi = readF32(mem, kNabPos + 16 * a + 4);
            const float zi = readF32(mem, kNabPos + 16 * a + 8);
            float acc = 0.0f;
            for (u32 b = 0; b < 2; ++b) {
                const u32 n = mem.read32(kNabNbr + 8 * a + 4 * b);
                const float dx = readF32(mem, kNabPos + 16 * n) - xi;
                const float dy =
                    readF32(mem, kNabPos + 16 * n + 4) - yi;
                const float dz =
                    readF32(mem, kNabPos + 16 * n + 8) - zi;
                const float q = readF32(mem, kNabPos + 16 * n + 12);
                float r2 = dx * dx;
                r2 = std::fmaf(dy, dy, r2);
                r2 = std::fmaf(dz, dz, r2);
                const float r = std::sqrt(r2);
                acc = std::fmaf(q / (r2 + 0.1f), r, acc);
            }
            if (!closeF32(readF32(mem, kNabF + 4 * a), acc))
                return false;
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// xz: hash-chain match finder over per-tile data chunks
// ---------------------------------------------------------------------

constexpr u32 kXzTiles = 48;
constexpr u32 kXzChunk = 1024;       // bytes per tile
constexpr u32 kXzPosPerTile = 48;
constexpr u32 kXzTableEntries = 256;
constexpr u32 kXzMaxMatch = 16;
constexpr Addr kXzData = 0x100000;   // tile chunks, contiguous
constexpr Addr kXzTable = 0x140000;  // per-tile hash tables
constexpr Addr kXzLen = 0x150000;    // match length per position

Workload
makeXz()
{
    Workload w;
    w.name = "xz";
    w.suite = "spec";
    w.data_ranges = {{kXzData, 0x40000},
                     {kXzTable, 0x10000},
                     {kXzLen, 0x10000}};
    w.description = "LZ match finder: hash-table candidate lookup and "
                    "byte-wise match extension over 16 chunks";
    w.profile = Profile::Mixed;

    w.asm_serial = "_start:\n"
                   "    li s4, " + std::to_string(kXzData) + "\n" +
                   "    li s5, " + std::to_string(kXzTable) + "\n" +
                   "    li s6, " + std::to_string(kXzLen) + "\n" +
                   partitionBounds(kXzTiles) + R"(
tile_loop:
    slli t0, s2, 10
    add s7, s4, t0         # chunk base
    slli t0, s2, 10
    add s8, s5, t0         # hash table base (256 x 4B)
    li s9, 0               # position within chunk
pos_loop:
    # h = (data32(pos) * 2654435761) >> 24
    add t0, s7, s9
    lw t1, 0(t0)
    li t2, 0x9e3779b1
    mul t1, t1, t2
    srli t1, t1, 24
    slli t1, t1, 2
    add t1, t1, s8         # &table[h]
    lw t3, 0(t1)           # candidate position
    sw s9, 0(t1)           # table[h] = pos
    li s10, 0              # match length
    bltz t3, nomatch       # empty slot (-1)
    bge t3, s9, nomatch
    add t4, s7, t3         # candidate ptr
    add t5, s7, s9         # current ptr
extend:
    add t0, t4, s10
    lbu t1, 0(t0)
    add t0, t5, s10
    lbu t2, 0(t0)
    bne t1, t2, nomatch
    addi s10, s10, 1
    li t0, )" + std::to_string(kXzMaxMatch) + R"(
    blt s10, t0, extend
nomatch:
    # record length
    slli t0, s2, 7         # tile * 96 entries... (tile * 128 slots)
    slli t1, t0, 1
    add t0, t0, t1         # reserved spacing (tile * 384 bytes)
    add t0, t0, s6
    srli t1, s9, 4         # position / 16 = record index
    slli t1, t1, 2
    add t0, t0, t1
    sw s10, 0(t0)
    addi s9, s9, 16        # stride 16 bytes between probes
    li t0, )" + std::to_string(kXzPosPerTile * 16) + R"(
    blt s9, t0, pos_loop
    addi s2, s2, 1
    blt s2, s3, tile_loop
    ebreak
)";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x7a7a);
        for (u32 t = 0; t < kXzTiles; ++t) {
            // Compressible-ish data: small alphabet with repeats.
            for (u32 i = 0; i < kXzChunk; ++i) {
                u8 byte;
                if (i >= 64 && rng.chance(0.4)) {
                    byte = mem.read8(kXzData + t * kXzChunk + i - 64);
                } else {
                    byte = static_cast<u8>(rng.below(8));
                }
                mem.write8(kXzData + t * kXzChunk + i, byte);
            }
            for (u32 e = 0; e < kXzTableEntries; ++e)
                mem.write32(kXzTable + t * 1024 + 4 * e, 0xffffffffu);
        }
    };

    w.check = [](const SparseMemory &mem) {
        for (u32 t = 0; t < kXzTiles; ++t) {
            std::vector<i32> table(kXzTableEntries, -1);
            const Addr chunk = kXzData + t * kXzChunk;
            for (u32 rec = 0; rec < kXzPosPerTile; ++rec) {
                const u32 pos = rec * 16;
                const u32 word = mem.read32(chunk + pos);
                const u32 h = (word * 0x9e3779b1u) >> 24;
                const i32 cand = table[h];
                table[h] = static_cast<i32>(pos);
                u32 len = 0;
                if (cand >= 0 && cand < static_cast<i32>(pos)) {
                    while (len < kXzMaxMatch &&
                           mem.read8(chunk + static_cast<u32>(cand) +
                                     len) ==
                               mem.read8(chunk + pos + len))
                        ++len;
                }
                if (mem.read32(kXzLen + t * 384 + 4 * rec) != len)
                    return false;
            }
        }
        return true;
    };
    return w;
}

// ---------------------------------------------------------------------
// imagick: separable 5-tap convolution (two horizontal passes)
// ---------------------------------------------------------------------

constexpr u32 kImW = 64;  // image width
constexpr u32 kImH = 48;  // image height (rows are partitioned)
constexpr Addr kImIn = 0x100000;
constexpr Addr kImTmp = 0x108000;
constexpr Addr kImOut = 0x110000;
constexpr float kImTaps[5] = {0.0625f, 0.25f, 0.375f, 0.25f, 0.0625f};

Workload
makeImagick()
{
    Workload w;
    w.name = "imagick";
    w.suite = "spec";
    w.data_ranges = {{kImIn, 0x8000},
                     {kImTmp, 0x8000},
                     {kImOut, 0x10000}};
    w.description = "image blur: two 5-tap separable convolution "
                    "passes over a " + std::to_string(kImW) + "x" +
                    std::to_string(kImH) + " float image";
    w.profile = Profile::Compute;

    // Taps in f20..f24.
    std::string prologue = "_start:\n";
    const u32 tap_bits[5] = {0x3d800000, 0x3e800000, 0x3ec00000,
                             0x3e800000, 0x3d800000};
    for (u32 k = 0; k < 5; ++k) {
        prologue += "    li t1, " + std::to_string(tap_bits[k]) + "\n";
        prologue +=
            "    fmv.w.x f" + std::to_string(20 + k) + ", t1\n";
    }
    prologue += partitionBounds(kImH);

    // Convolve one pixel: t3 = &src[row][col]; t4 = &dst[row][col].
    const std::string pixel = R"(
    flw ft0, -8(t3)
    flw ft1, -4(t3)
    flw ft2, 0(t3)
    flw ft3, 4(t3)
    flw ft4, 8(t3)
    fmul.s ft5, ft0, f20
    fmadd.s ft5, ft1, f21, ft5
    fmadd.s ft5, ft2, f22, ft5
    fmadd.s ft5, ft3, f23, ft5
    fmadd.s ft5, ft4, f24, ft5
    fsw ft5, 0(t4)
)";

    auto pass = [&](const char *label, Addr src, Addr dst) {
        return std::string(label) + ":\n" +
               "    mv s7, s2\n" + label + "_row:\n" +
               "    slli t0, s7, 8\n"
               "    addi t0, t0, 8\n"   // first col with full support
               "    li t5, " + std::to_string(src) + "\n" +
               "    add t3, t5, t0\n"
               "    li t5, " + std::to_string(dst) + "\n" +
               "    add t4, t5, t0\n"
               "    li t6, " + std::to_string(kImW - 4) + "\n" +
               label + "_col:\n" + pixel +
               "    addi t3, t3, 4\n"
               "    addi t4, t4, 4\n"
               "    addi t6, t6, -1\n"
               "    bnez t6, " + label + "_col\n" +
               "    addi s7, s7, 1\n"
               "    bne s7, s3, " + label + "_row\n";
    };

    w.asm_serial = prologue + pass("p1", kImIn, kImTmp) +
                   pass("p2", kImTmp, kImOut) + "    ebreak\n";

    // SIMT: each row's pixel sweep is a simt region (rc = col offset).
    auto simt_pass = [&](const char *label, Addr src, Addr dst) {
        const std::string lbl(label);
        return "    mv s7, s2\n" + lbl + "_row:\n"
               "    slli t0, s7, 8\n"
               "    addi t0, t0, 8\n"
               "    li t5, " + std::to_string(src) + "\n" +
               "    add a5, t5, t0\n"
               "    li t5, " + std::to_string(dst) + "\n" +
               "    add a6, t5, t0\n"
               "    li a2, 0\n"
               "    li a3, 4\n"
               "    li a4, " + std::to_string((kImW - 4) * 4) + "\n" +
               lbl + "_head:\n"
               "    simt_s a2, a3, a4, 1\n"
               "    add t3, a5, a2\n"
               "    add t4, a6, a2\n" + pixel +
               "    simt_e a2, a4, " + lbl + "_head\n" +
               "    addi s7, s7, 1\n"
               "    bne s7, s3, " + lbl + "_row\n";
    };

    w.asm_simt = prologue + simt_pass("p1", kImIn, kImTmp) +
                 simt_pass("p2", kImTmp, kImOut) + "    ebreak\n";

    w.init = [](SparseMemory &mem) {
        Rng rng(0x1439);
        for (u32 i = 0; i < kImH * kImW; ++i)
            writeF32(mem, kImIn + 4 * i, rng.uniform() * 255.0f);
    };

    w.check = [](const SparseMemory &mem) {
        // Reference both passes with identical arithmetic order.
        std::vector<float> tmp(kImH * kImW, 0.0f);
        for (u32 r = 0; r < kImH; ++r) {
            for (u32 c = 2; c < kImW - 2; ++c) {
                float acc = readF32(mem, kImIn + 4 * (r * kImW + c - 2)) *
                            kImTaps[0];
                for (u32 k = 1; k < 5; ++k)
                    acc = std::fmaf(
                        readF32(mem,
                                kImIn + 4 * (r * kImW + c - 2 + k)),
                        kImTaps[k], acc);
                tmp[r * kImW + c] = acc;
            }
        }
        for (u32 r = 0; r < kImH; ++r) {
            for (u32 c = 4; c < kImW - 4; ++c) {
                float acc = tmp[r * kImW + c - 2] * kImTaps[0];
                for (u32 k = 1; k < 5; ++k)
                    acc = std::fmaf(tmp[r * kImW + c - 2 + k],
                                    kImTaps[k], acc);
                if (!closeF32(readF32(mem, kImOut + 4 * (r * kImW + c)),
                              acc))
                    return false;
            }
        }
        return true;
    };
    return w;
}

} // namespace

Workload workloadLeela() { return makeLeela(); }
Workload workloadNab() { return makeNab(); }
Workload workloadXz() { return makeXz(); }
Workload workloadImagick() { return makeImagick(); }

} // namespace diag::workloads
