#include "harness/table.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace diag::harness
{

void
Table::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    rows_.push_back(std::move(cells));
}

void
Table::print() const
{
    std::vector<size_t> widths(header_.size(), 0);
    auto widen = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size() && c < widths.size(); ++c)
            widths[c] = std::max(widths[c], cells[c].size());
    };
    widen(header_);
    for (const auto &r : rows_)
        widen(r);

    std::printf("\n== %s ==\n", title_.c_str());
    auto print_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < widths.size(); ++c) {
            const std::string &cell =
                c < cells.size() ? cells[c] : std::string();
            std::printf("%-*s  ", static_cast<int>(widths[c]),
                        cell.c_str());
        }
        std::printf("\n");
    };
    print_row(header_);
    size_t total = header_.size() * 2;
    for (size_t wdt : widths)
        total += wdt;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &r : rows_)
        print_row(r);
}

std::string
Table::num(double value, int digits)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

double
geomean(const std::vector<double> &values)
{
    fatal_if(values.empty(), "geomean of empty vector");
    double log_sum = 0.0;
    for (double v : values) {
        fatal_if(v <= 0.0, "geomean needs positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace diag::harness
