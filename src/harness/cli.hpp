/**
 * @file
 * Shared command-line parsing for the tools/diag_*.cpp CLIs.
 *
 * Every tool used to hand-roll the same argv loop (--jobs, --seed,
 * --json, --sarif, --config, "missing value for X", usage-on-unknown).
 * ArgParser is the declarative replacement: a tool registers its flags
 * against the fields of its options struct, and parse() handles value
 * fetching, numeric conversion, --help, unknown-flag diagnostics, and
 * the usage text — keeping the flag name, its help line, and its
 * target in one place.
 */
#ifndef DIAG_HARNESS_CLI_HPP
#define DIAG_HARNESS_CLI_HPP

#include <string>
#include <vector>

#include "common/types.hpp"
#include "diag/config.hpp"

namespace diag::harness
{

/** Declarative argv parser; see the file comment for the contract. */
class ArgParser
{
  public:
    /** What main() should do after parse(). */
    enum class Status
    {
        Run,    //!< arguments consumed; run the tool
        Help,   //!< --help: usage printed, exit 0
        /** Bad invocation — unknown flag, duplicate flag, missing or
         *  malformed value, unexpected operand. parse() already
         *  printed a one-line "error: ..." plus the usage text;
         *  every tool exits 1 on this status. */
        Usage,
    };

    /**
     * @p tool is the program name for the synopsis line and
     * @p operands_name, when nonempty, names the bare (non-dash)
     * operands in the synopsis (e.g. "[program.s ...]").
     */
    ArgParser(std::string tool, std::string operands_name = "");

    /** --name (no value). */
    ArgParser &flag(std::string name, bool *target, std::string help);
    /** --name VALUE variants. */
    ArgParser &option(std::string name, std::string *target,
                      std::string metavar, std::string help);
    ArgParser &option(std::string name, unsigned *target,
                      std::string metavar, std::string help);
    ArgParser &option(std::string name, u64 *target,
                      std::string metavar, std::string help);
    ArgParser &option(std::string name, double *target,
                      std::string metavar, std::string help);
    /** Collect bare operands (file paths) into @p target; without
     *  this registration a bare operand is a usage error. */
    ArgParser &operands(std::vector<std::string> *target);

    // The flags every tool spells identically, help text included.
    ArgParser &configFlag(std::string *target);
    ArgParser &jobsFlag(unsigned *target);
    ArgParser &seedFlag(u64 *target);
    ArgParser &jsonFlag(bool *target);
    ArgParser &sarifFlag(bool *target);
    ArgParser &werrorFlag(bool *target);

    /** Print the synopsis and one help line per registered flag. */
    void usage() const;

    /**
     * Consume argv. Prints usage itself for Help/Usage outcomes;
     * Usage is additionally preceded by a one-line diagnostic on
     * stderr naming the offending flag or value. Every registered
     * flag may appear at most once (operands may repeat).
     */
    Status parse(int argc, char **argv) const;

  private:
    /** Print "tool: error: ..." + usage, and yield Status::Usage. */
    Status usageError(const char *fmt, ...) const
        __attribute__((format(printf, 2, 3)));

    struct Flag
    {
        enum class Kind : u8
        {
            Bool,
            String,
            Unsigned,
            U64,
            Double,
        };
        std::string name;
        Kind kind;
        void *target;
        std::string metavar;
        std::string help;
    };

    std::string tool_;
    std::string operands_name_;
    std::vector<Flag> flags_;
    std::vector<std::string> *operands_ = nullptr;

    ArgParser &add(std::string name, Flag::Kind kind, void *target,
                   std::string metavar, std::string help);
};

/**
 * The DiAG preset named on a --config flag (I4C2, F4C2, F4C16,
 * F4C32); fatal() on anything else. Shared by every tool.
 */
core::DiagConfig configByName(const std::string &name);

/**
 * Non-fatal preset lookup for long-running callers (the service
 * layer) that must classify a bad name as a malformed request
 * instead of exiting: true and *out filled when @p name is a known
 * preset, false otherwise.
 */
bool tryConfigByName(const std::string &name, core::DiagConfig *out);

/** @p base with its ring count overridden when @p rings != 0. */
core::DiagConfig configWithRings(const std::string &name,
                                 unsigned rings);

} // namespace diag::harness

#endif // DIAG_HARNESS_CLI_HPP
