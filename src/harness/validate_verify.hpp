/**
 * @file
 * Differential validation of the diag-verify program verifier: every
 * verdict on a generated fuzz program is cross-checked against what
 * actually happens when the program runs (DESIGN.md §12).
 *
 * The protocol, per program:
 *  - the golden reference executes instruction by instruction while
 *    we observe the events the verifier reasons about (a zero
 *    divisor reaching a divide, a misaligned or out-of-map access);
 *  - a *Proven* safety verdict contradicted by an observed event is
 *    an unsound proof and fails the corpus;
 *  - a *Refuted* verdict on a halting execution that never shows the
 *    event is a bogus refutation and fails the corpus;
 *  - race verdicts check against the generator's constructive ground
 *    truth (FuzzProgram::racy): proven-safe on a program with an
 *    injected overlap, or proven-racy on a program whose per-thread
 *    footprints are disjoint by construction, both fail;
 *  - deadlock-freedom proofs check observationally (DiAG must halt)
 *    and the proven thread count checks against the ring's
 *    simt_region_*_threads counter (token conservation);
 *  - on top, the classic differential check: DiAG and OoO
 *    architectural state must match golden (skipped for racy
 *    programs, whose memory is timing-dependent by design).
 */
#ifndef DIAG_HARNESS_VALIDATE_VERIFY_HPP
#define DIAG_HARNESS_VALIDATE_VERIFY_HPP

#include <string>
#include <vector>

#include "analysis/verify.hpp"
#include "diag/config.hpp"
#include "sim/fuzz.hpp"

namespace diag::harness
{

/** Outcome of differentially validating one generated program. */
struct VerifyCheck
{
    u64 seed = 0;
    /** Generator ground truth (copied from the FuzzProgram). */
    bool has_simt = false;
    bool racy = false;
    bool injected_div0 = false;
    bool injected_misaligned = false;
    bool injected_oob = false;
    /** Events observed while stepping the golden reference. */
    bool golden_halted = false;
    bool golden_faulted = false;
    bool obs_div0 = false;
    bool obs_misaligned = false;
    bool obs_oob = false;
    /** Compact verdict summary for the report line. */
    std::string verdicts;
    /** Soundness violations found (empty = verifier held up). */
    std::vector<std::string> failures;
    /** DiAG/OoO final architectural state matched golden (only
     *  meaningful when compared; racy programs skip it). */
    bool engines_match = true;
    /** Proven + refuted verdicts this program contributed. */
    unsigned proofs = 0;
    unsigned refutations = 0;
    /** The host wall-clock watchdog stopped the check before it
     *  finished; the cross-checks above are incomplete and the seed
     *  is tallied as timed out, neither passed nor failed. */
    bool host_timed_out = false;
    /** The program source, kept only for failing checks so the CLI
     *  can write it out as a CI artifact. */
    std::string source;

    bool ok() const { return failures.empty() && engines_match; }
};

/**
 * Generate the program for @p fo and run the full cross-check above
 * on @p cfg. Pure; safe to fan out over host workers.
 * @p host_timeout_ms caps the wall-clock time of the golden/DiAG/OoO
 * executions (0 = uncapped); an expired check comes back with
 * host_timed_out set instead of wedging the corpus run.
 */
VerifyCheck validateVerify(const core::DiagConfig &cfg,
                           const sim::FuzzOptions &fo,
                           u64 max_insts = 2'000'000,
                           u64 host_timeout_ms = 60000);

/** Which generator profile a corpus run uses. */
enum class FuzzProfile : u8
{
    Scalar,  //!< scalar programs with injected trap hazards
    Simt,    //!< simt regions (no calls, so control verdicts prove)
    Mixed,   //!< alternate between the two by seed
};

/** Aggregate outcome of a seeded corpus. */
struct VerifyFuzzReport
{
    u64 base_seed = 0;
    unsigned programs = 0;
    unsigned failed = 0;      //!< checks with failures/mismatches
    unsigned proofs = 0;      //!< Proven verdicts cross-checked
    unsigned refutations = 0; //!< Refuted verdicts cross-checked
    /** Checks the host watchdog stopped early (incomplete, not
     *  failed); nonzero means the corpus under-covered. */
    unsigned host_timed_out = 0;
    /** Per-seed results in seed order (byte-stable for any jobs). */
    std::vector<VerifyCheck> checks;

    bool ok() const { return failed == 0; }
};

/** The generator options seed @p seed gets under @p profile. */
sim::FuzzOptions fuzzOptionsFor(u64 seed, FuzzProfile profile);

/**
 * Run seeds [base_seed, base_seed+count) through validateVerify,
 * fanned out over up to @p jobs host threads (0 = hardware
 * concurrency). Results come back in seed order. Each seed gets a
 * @p host_timeout_ms wall-clock watchdog (0 = uncapped) so one
 * pathological program cannot wedge a CI job; the default is far
 * above any healthy check, keeping reports byte-identical.
 */
VerifyFuzzReport runVerifyFuzz(const core::DiagConfig &cfg,
                               u64 base_seed, unsigned count,
                               unsigned jobs, FuzzProfile profile,
                               u64 host_timeout_ms = 60000);

/** One line per failing seed plus a corpus summary. */
std::string renderVerifyFuzz(const VerifyFuzzReport &r, bool verbose);

} // namespace diag::harness

#endif // DIAG_HARNESS_VALIDATE_VERIFY_HPP
