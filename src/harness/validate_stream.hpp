/**
 * @file
 * Trace-differential validation of the stream analyzer (`diag-stream
 * --validate`, DESIGN.md §14): run a workload's simt variant with the
 * per-instruction address recorder attached, then replay every region
 * entry's — and every serial single-block loop's — recorded addresses
 * against the statically predicted affine maps. A proven-affine
 * stream whose observed sequence deviates from `addr[k] = addr[0] +
 * k*stride` — or a proven bank-conflict-free stream with an observed
 * same-bank pair inside the bank-occupancy window — is a soundness
 * bug in the analyzer and fails the validation.
 */
#ifndef DIAG_HARNESS_VALIDATE_STREAM_HPP
#define DIAG_HARNESS_VALIDATE_STREAM_HPP

#include <string>
#include <vector>

#include "analysis/stream.hpp"
#include "diag/config.hpp"
#include "workloads/workload.hpp"

namespace diag::harness
{

/** Replay outcome for one static simt region (all entries pooled). */
struct StreamRegionCheck
{
    Addr pc = 0;               //!< simt_s address
    u64 entries = 0;           //!< recorded pipelined entries
    u64 threads = 0;           //!< threads launched across entries
    unsigned affine_streams = 0;   //!< proven-affine streams checked
    unsigned affine_ok = 0;        //!< ... whose replay matched
    unsigned bank_streams = 0;     //!< proven conflict-free checked
    unsigned bank_ok = 0;          //!< ... with zero observed conflicts
    bool launch_ok = true;     //!< recorded step/trips match the proof
    /** One line per deviation (deterministic order). */
    std::vector<std::string> failures;

    bool ok() const { return launch_ok && failures.empty(); }
};

/** Replay outcome for one serial single-block loop. Recorded serial
 *  address sequences are segmented into loop entries at the loop's
 *  taken backward branch; within one entry every proven-affine
 *  stream must advance by exactly its stride per iteration. */
struct StreamLoopCheck
{
    Addr head = 0;             //!< loop entry (branch target)
    Addr tail = 0;             //!< the backward branch
    u64 entries = 0;           //!< observed loop entries (runs)
    u64 iterations = 0;        //!< recorded body executions replayed
    unsigned affine_streams = 0;   //!< proven-affine streams checked
    unsigned affine_ok = 0;        //!< ... whose replay matched
    unsigned bank_streams = 0;     //!< proven conflict-free checked
    unsigned bank_ok = 0;          //!< ... with zero observed conflicts
    /** One line per deviation (deterministic order). */
    std::vector<std::string> failures;

    bool ok() const { return failures.empty(); }
};

/** Whole-workload stream validation. */
struct StreamValidation
{
    std::string workload;
    std::string config;
    u64 regions_entered = 0;  //!< static regions seen at run time
    u64 regions_static = 0;   //!< regions the analyzer classified
    u64 loops_entered = 0;    //!< static loops seen at run time
    u64 loops_static = 0;     //!< loops the analyzer classified
    std::vector<StreamRegionCheck> regions; //!< by simt_s pc
    std::vector<StreamLoopCheck> loops;     //!< by head pc

    /** True iff every entered region and loop replayed clean. */
    bool ok() const;
};

/**
 * Run the simt variant of @p w single-threaded on @p cfg with the
 * address recorder attached, then check every recorded region entry —
 * and every serial single-block loop's recorded iterations — against
 * the analyzer's verdicts. Regions and loops never executed at run
 * time are reported (entries = 0) but cannot fail.
 */
StreamValidation validateStream(const core::DiagConfig &cfg,
                                const workloads::Workload &w);

/** One validation of the sweep matrix (workload pointer must outlive
 *  validateStreamMany(); shared read-only across host workers). */
struct StreamCell
{
    core::DiagConfig cfg;
    const workloads::Workload *w = nullptr;
};

/**
 * validateStream() for every cell, fanned out over up to @p jobs host
 * threads (0 = one per hardware thread). Each cell simulates and
 * records on its own engine instance inside its worker; reports come
 * back in cell order, so rendered sweep output is byte-identical for
 * any job count.
 */
std::vector<StreamValidation>
validateStreamMany(const std::vector<StreamCell> &cells, unsigned jobs);

/** Human-readable validation table (one block per region). */
std::string renderStreamValidation(const StreamValidation &r);

/** JSON object for the goldens / CI sweep. */
std::string renderStreamValidationJson(const StreamValidation &r);

} // namespace diag::harness

#endif // DIAG_HARNESS_VALIDATE_STREAM_HPP
