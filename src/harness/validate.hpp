/**
 * @file
 * Simulator cross-validation of the static bound model (`diag-bound
 * --validate`): run a workload on a DiAG configuration, read back the
 * per-region counters the ring records, and compare the measured
 * cycles against the analyzer's provable lower bound and its
 * prediction. "measured < bound" proves a simulator timing bug;
 * "prediction off by more than the slack" flags model drift.
 */
#ifndef DIAG_HARNESS_VALIDATE_HPP
#define DIAG_HARNESS_VALIDATE_HPP

#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "diag/config.hpp"
#include "workloads/workload.hpp"

namespace diag::harness
{

/** Static timing parameters matching a live DiAG configuration. */
analysis::BoundParams boundParamsFrom(const core::DiagConfig &cfg);

/** Analyzer options (geometry + timing + ABI entry) for @p cfg. */
analysis::LintOptions lintOptionsFor(const core::DiagConfig &cfg);

/** Measured-vs-static comparison for one simt region. */
struct RegionCheck
{
    Addr pc = 0;            //!< simt_s address (counter key)
    double entries = 0;     //!< times the pipeline was entered
    double threads = 0;     //!< total threads launched
    double measured = 0;    //!< summed region cycles (simt_s..resume)
    double lower_bound = 0; //!< provable minimum for those counts
    double predicted = 0;   //!< model estimate for those counts
    double err = 0;         //!< |predicted - measured| / measured
    std::string bottleneck; //!< dominant limiter per the model
    bool ok_bound = true;   //!< measured >= lower_bound
    bool ok_pred = true;    //!< err <= slack (regions that ran)
};

/** Whole-workload validation outcome. */
struct ValidationReport
{
    std::string workload;
    std::string config;
    bool simt = false;             //!< simt-annotated variant
    double measured_cycles = 0;    //!< end-to-end run cycles
    double program_lower_bound = 0;
    bool ok_program = true;        //!< measured >= program bound
    std::vector<RegionCheck> regions;

    /** True iff the program bound and every region check hold. */
    bool ok() const;
};

/**
 * Run @p w single-threaded on @p cfg (the simt variant when
 * @p use_simt), then check every simt region's measured cycles
 * against the static model. @p slack is the allowed relative error
 * of the *prediction* (the lower bound allows none).
 */
ValidationReport validateBound(const core::DiagConfig &cfg,
                               const workloads::Workload &w,
                               bool use_simt, double slack = 0.15);

/** One validation of the sweep matrix (workload pointer must outlive
 *  validateBoundMany(); shared read-only across host workers). */
struct BoundCell
{
    core::DiagConfig cfg;
    const workloads::Workload *w = nullptr;
    bool use_simt = false;
    double slack = 0.15;
};

/**
 * validateBound() for every cell, fanned out over up to @p jobs host
 * threads (0 = one per hardware thread). Each cell simulates on its
 * own engine instance; reports come back in cell order, so rendered
 * sweep output is byte-identical for any job count.
 */
std::vector<ValidationReport>
validateBoundMany(const std::vector<BoundCell> &cells, unsigned jobs);

/** Human-readable validation table (one line per region). */
std::string renderValidation(const ValidationReport &r);

/** JSON object for the goldens / CI sweep. */
std::string renderValidationJson(const ValidationReport &r);

} // namespace diag::harness

#endif // DIAG_HARNESS_VALIDATE_HPP
