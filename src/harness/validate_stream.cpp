#include "harness/validate_stream.hpp"

#include <algorithm>
#include <map>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "harness/runner.hpp"
#include "harness/validate.hpp"
#include "host/parallel.hpp"

namespace diag::harness
{

namespace
{

using analysis::LoopStreams;
using analysis::RegionStreams;
using analysis::StreamInfo;
using analysis::StreamKind;
using trace::AddrTrace;

/** Distances within which two accesses of one stream can hold an L1D
 *  bank concurrently (the analyzer proves conflict-freedom over the
 *  same window; two bank-pattern periods bound it, see makeStream). */
u64
bankWindow(const core::DiagConfig &cfg)
{
    const u64 banks = cfg.mem.l1d.banks;
    if (banks == 0)
        return 1;
    return std::min<u64>(
        std::max<Cycle>(1, cfg.mem.l1d.bank_occupancy), 16 * banks);
}

/** Recorded entries of one simt_s pc, in recording order. */
using EntryList = std::vector<const AddrTrace::Region *>;

void
fail(StreamRegionCheck &c, std::string msg)
{
    c.failures.push_back(std::move(msg));
}

/**
 * Replay one proven-affine stream against one recorded region entry.
 * Returns false on the first deviation (already reported into @p c).
 */
bool
replayAffine(StreamRegionCheck &c, const RegionStreams &rs,
             const StreamInfo &s, const AddrTrace::Region &rec,
             u64 entry)
{
    const auto cit = rec.counts.find(s.pc);
    const u64 cnt = cit == rec.counts.end() ? 0 : cit->second;
    if (rs.straightline && cnt != rec.trips) {
        fail(c, detail::vformat(
                    "pc 0x%08x entry %llu: executed %llu times, "
                    "pipeline launched %llu threads",
                    s.pc, (unsigned long long)entry,
                    (unsigned long long)cnt,
                    (unsigned long long)rec.trips));
        return false;
    }
    const auto ait = rec.addrs.find(s.pc);
    if (ait == rec.addrs.end() || ait->second.size() < 2)
        return true;  // nothing to replay against
    const std::vector<u32> &seq = ait->second;
    if (rs.straightline && s.stride_known) {
        // Exact map: every thread executes the access once, so the
        // k-th recorded address must be addr[0] + k*stride (mod 2^32).
        for (size_t k = 1; k < seq.size(); ++k) {
            const u32 want = static_cast<u32>(
                static_cast<u64>(seq[0]) +
                static_cast<u64>(static_cast<i64>(k) * s.stride));
            if (seq[k] != want) {
                fail(c, detail::vformat(
                            "pc 0x%08x entry %llu thread %zu: observed "
                            "0x%08x, affine map predicts 0x%08x "
                            "(stride %lld)",
                            s.pc, (unsigned long long)entry, k, seq[k],
                            want, (long long)s.stride));
                return false;
            }
        }
        return true;
    }
    if (rs.straightline) {
        // Stride unproven (simt step not a compile-time constant) but
        // the map is still affine: the observed deltas must be equal.
        const u32 d0 = seq[1] - seq[0];
        for (size_t k = 1; k + 1 < seq.size(); ++k) {
            if (seq[k + 1] - seq[k] != d0) {
                fail(c, detail::vformat(
                            "pc 0x%08x entry %llu thread %zu: delta "
                            "0x%08x breaks the constant-stride run of "
                            "0x%08x",
                            s.pc, (unsigned long long)entry, k,
                            seq[k + 1] - seq[k], d0));
                return false;
            }
        }
        return true;
    }
    // Branchy body: a thread may skip the access, so observed deltas
    // are (positive) multiples of the per-thread stride.
    if (s.stride_known && s.stride != 0) {
        for (size_t k = 0; k + 1 < seq.size(); ++k) {
            const i64 d = static_cast<i32>(seq[k + 1] - seq[k]);
            if (d == 0 || d % s.stride != 0 || d / s.stride < 1) {
                fail(c, detail::vformat(
                            "pc 0x%08x entry %llu thread %zu: delta "
                            "%lld is not a positive multiple of "
                            "stride %lld",
                            s.pc, (unsigned long long)entry, k,
                            (long long)d, (long long)s.stride));
                return false;
            }
        }
        return true;
    }
    if ((s.stride_known && s.stride == 0) || s.rc_coeff == 0) {
        // Invariant address: every access of the entry must agree.
        for (size_t k = 1; k < seq.size(); ++k) {
            if (seq[k] != seq[0]) {
                fail(c, detail::vformat(
                            "pc 0x%08x entry %llu thread %zu: observed "
                            "0x%08x, invariant map predicts 0x%08x",
                            s.pc, (unsigned long long)entry, k, seq[k],
                            seq[0]));
                return false;
            }
        }
    }
    return true;
}

/** First same-bank distinct-word pair within @p window positions of
 *  each other in @p seq, or (size, size) when none. */
std::pair<size_t, size_t>
firstBankConflict(const std::vector<u32> &seq, u32 banks, u64 window)
{
    for (size_t k = 0; k + 1 < seq.size(); ++k) {
        const size_t last =
            std::min<size_t>(seq.size() - 1, k + window);
        for (size_t j = k + 1; j <= last; ++j) {
            const u32 wa = seq[k] >> 3, wb = seq[j] >> 3;
            if (wa != wb && (wa & (banks - 1)) == (wb & (banks - 1)))
                return {k, j};
        }
    }
    return {seq.size(), seq.size()};
}

/**
 * Check a proven conflict-free stream: no two recorded accesses
 * within the in-flight window of each other may map to one bank from
 * different 8-byte words.
 */
bool
replayBanks(StreamRegionCheck &c, const StreamInfo &s,
            const AddrTrace::Region &rec, u64 entry, u32 banks,
            u64 window)
{
    const auto ait = rec.addrs.find(s.pc);
    if (ait == rec.addrs.end())
        return true;
    const std::vector<u32> &seq = ait->second;
    const auto [a, b] = firstBankConflict(seq, banks, window);
    if (a == seq.size())
        return true;
    fail(c, detail::vformat(
                "pc 0x%08x entry %llu threads %zu and %zu: predicted "
                "conflict-free, but 0x%08x and 0x%08x share bank %u",
                s.pc, (unsigned long long)entry, a, b, seq[a], seq[b],
                (seq[a] >> 3) & (banks - 1)));
    return false;
}

StreamRegionCheck
checkRegion(const RegionStreams &rs, const EntryList &entries,
            u32 banks, u64 window)
{
    StreamRegionCheck c;
    c.pc = rs.simt_s_pc;
    c.entries = entries.size();
    for (const AddrTrace::Region *rec : entries) {
        c.threads += rec->trips;
        if (rs.step_known &&
            rec->step != static_cast<u32>(rs.step)) {
            c.launch_ok = false;
            fail(c, detail::vformat(
                        "recorded step %u contradicts the proven "
                        "constant %lld",
                        rec->step, (long long)rs.step));
        }
        if (rs.trips_known && rec->trips != rs.trips) {
            c.launch_ok = false;
            fail(c, detail::vformat(
                        "recorded %llu threads contradict the proven "
                        "trip count %llu",
                        (unsigned long long)rec->trips,
                        (unsigned long long)rs.trips));
        }
    }
    for (const StreamInfo &s : rs.streams) {
        if (s.kind == StreamKind::Affine) {
            ++c.affine_streams;
            bool clean = true;
            u64 entry = 0;
            for (const AddrTrace::Region *rec : entries)
                clean = replayAffine(c, rs, s, *rec, entry++) && clean;
            c.affine_ok += clean ? 1 : 0;
        }
        if (s.bank_conflict_free) {
            ++c.bank_streams;
            bool clean = true;
            u64 entry = 0;
            for (const AddrTrace::Region *rec : entries)
                clean = replayBanks(c, s, *rec, entry++, banks,
                                    window) &&
                        clean;
            c.bank_ok += clean ? 1 : 0;
        }
    }
    return c;
}

/**
 * Split one pc's serial (seq, addr) record into loop-entry runs: two
 * consecutive executions continue one entry iff the loop's backward
 * branch fired between them. @p takens holds the (ascending) sequence
 * numbers of that branch's taken events.
 */
std::vector<std::vector<u32>>
entryRuns(const std::vector<std::pair<u64, u32>> &rec,
          const std::vector<u64> &takens)
{
    std::vector<std::vector<u32>> runs;
    size_t j = 0;
    for (size_t k = 0; k < rec.size(); ++k) {
        bool cont = false;
        if (k > 0) {
            while (j < takens.size() && takens[j] < rec[k - 1].first)
                ++j;
            cont = j < takens.size() && takens[j] < rec[k].first;
        }
        if (cont)
            runs.back().push_back(rec[k].second);
        else
            runs.push_back({rec[k].second});
    }
    return runs;
}

StreamLoopCheck
checkLoop(const LoopStreams &ls, const AddrTrace &at, u32 banks,
          u64 window)
{
    StreamLoopCheck c;
    c.head = ls.head;
    c.tail = ls.tail;
    // Iteration boundaries: taken events of the loop's own branch.
    std::vector<u64> takens;
    for (const auto &[seq, pc] : at.loop_backs)
        if (pc == ls.tail)
            takens.push_back(seq);
    for (const StreamInfo &s : ls.streams) {
        const auto it = at.serial_addrs.find(s.pc);
        std::vector<std::vector<u32>> runs;
        if (it != at.serial_addrs.end() && !it->second.empty()) {
            runs = entryRuns(it->second, takens);
            c.entries = std::max<u64>(c.entries, runs.size());
            c.iterations =
                std::max<u64>(c.iterations, it->second.size());
        }
        if (s.kind == StreamKind::Affine && s.stride_known) {
            ++c.affine_streams;
            bool clean = true;
            for (size_t e = 0; e < runs.size() && clean; ++e) {
                const std::vector<u32> &seq = runs[e];
                for (size_t k = 1; k < seq.size(); ++k) {
                    const u32 want = static_cast<u32>(
                        static_cast<u64>(seq[0]) +
                        static_cast<u64>(static_cast<i64>(k) *
                                         s.stride));
                    if (seq[k] == want)
                        continue;
                    c.failures.push_back(detail::vformat(
                        "pc 0x%08x entry %zu iteration %zu: observed "
                        "0x%08x, affine map predicts 0x%08x "
                        "(stride %lld)",
                        s.pc, e, k, seq[k], want,
                        (long long)s.stride));
                    clean = false;
                    break;
                }
            }
            c.affine_ok += clean ? 1 : 0;
        }
        if (s.bank_conflict_free && banks > 0) {
            ++c.bank_streams;
            bool clean = true;
            for (size_t e = 0; e < runs.size() && clean; ++e) {
                const auto [a, b] =
                    firstBankConflict(runs[e], banks, window);
                if (a == runs[e].size())
                    continue;
                c.failures.push_back(detail::vformat(
                    "pc 0x%08x entry %zu iterations %zu and %zu: "
                    "predicted conflict-free, but 0x%08x and 0x%08x "
                    "share bank %u",
                    s.pc, e, a, b, runs[e][a], runs[e][b],
                    (runs[e][a] >> 3) & (banks - 1)));
                clean = false;
            }
            c.bank_ok += clean ? 1 : 0;
        }
    }
    return c;
}

} // namespace

bool
StreamValidation::ok() const
{
    for (const StreamRegionCheck &c : regions)
        if (!c.ok())
            return false;
    for (const StreamLoopCheck &c : loops)
        if (!c.ok())
            return false;
    return true;
}

StreamValidation
validateStream(const core::DiagConfig &cfg, const workloads::Workload &w)
{
    fatal_if(w.asm_simt.empty(),
             "stream validation replays simt regions; %s has no simt "
             "variant",
             w.name.c_str());
    StreamValidation rep;
    rep.workload = w.name;
    rep.config = cfg.name;

    const Program prog = assembler::assemble(w.asm_simt);
    analysis::LintResult scratch;
    const analysis::StreamResult sr =
        analysis::analyzeStreams(prog, lintOptionsFor(cfg), scratch);
    rep.regions_static = sr.regions.size();

    RunSpec spec;
    spec.threads = 1;
    spec.use_simt = true;
    spec.record_addrs = true;
    const EngineRun run = runOnDiag(cfg, w, spec);

    // Pool the recorded entries by region pc (a region re-enters once
    // per surrounding serial-loop iteration).
    std::map<Addr, EntryList> recorded;
    for (const AddrTrace::Region &rec : run.addrs->regions)
        recorded[rec.simt_s_pc].push_back(&rec);

    const u32 banks = cfg.mem.l1d.banks;
    const u64 window = bankWindow(cfg);
    for (const RegionStreams &rs : sr.regions) {
        const auto it = recorded.find(rs.simt_s_pc);
        if (it == recorded.end()) {
            StreamRegionCheck c;
            c.pc = rs.simt_s_pc;
            rep.regions.push_back(std::move(c));
            continue;
        }
        ++rep.regions_entered;
        rep.regions.push_back(
            checkRegion(rs, it->second, banks, window));
        recorded.erase(it);
    }
    // A recorded region the analyzer never classified is itself a
    // coverage failure (the static pass must see every simt_s).
    for (const auto &[pc, entries] : recorded) {
        StreamRegionCheck c;
        c.pc = pc;
        c.entries = entries.size();
        c.launch_ok = false;
        fail(c, "pipelined at run time but never classified "
                "statically");
        rep.regions.push_back(std::move(c));
    }
    // Serial single-block loops: segment the serially recorded
    // address sequences into loop entries and replay the loop-scope
    // affine and bank verdicts the same way.
    rep.loops_static = sr.loops.size();
    for (const LoopStreams &ls : sr.loops) {
        StreamLoopCheck c = checkLoop(ls, *run.addrs, banks, window);
        if (c.iterations > 0)
            ++rep.loops_entered;
        rep.loops.push_back(std::move(c));
    }
    return rep;
}

std::vector<StreamValidation>
validateStreamMany(const std::vector<StreamCell> &cells, unsigned jobs)
{
    return host::parallelMap<StreamValidation>(
        jobs, cells.size(), [&cells](size_t i) {
            const StreamCell &c = cells[i];
            panic_if(c.w == nullptr, "stream cell %zu has no workload",
                     i);
            return validateStream(c.cfg, *c.w);
        });
}

std::string
renderStreamValidation(const StreamValidation &r)
{
    std::string out = detail::vformat(
        "%s [%s]: %llu/%llu regions, %llu/%llu loops entered at run "
        "time  %s\n",
        r.workload.c_str(), r.config.c_str(),
        (unsigned long long)r.regions_entered,
        (unsigned long long)r.regions_static,
        (unsigned long long)r.loops_entered,
        (unsigned long long)r.loops_static,
        r.ok() ? "ok" : "FAILED");
    for (const StreamRegionCheck &c : r.regions) {
        if (c.entries == 0) {
            out += detail::vformat(
                "  region 0x%08x: never pipelined at run time\n", c.pc);
            continue;
        }
        out += detail::vformat(
            "  region 0x%08x: %llu entries, %llu threads, affine "
            "%u/%u replayed, conflict-free %u/%u confirmed%s\n",
            c.pc, (unsigned long long)c.entries,
            (unsigned long long)c.threads, c.affine_ok,
            c.affine_streams, c.bank_ok, c.bank_streams,
            c.ok() ? "" : "  FAILED");
        for (const std::string &f : c.failures)
            out += "    FAIL " + f + "\n";
    }
    for (const StreamLoopCheck &c : r.loops) {
        if (c.iterations == 0) {
            out += detail::vformat(
                "  loop 0x%08x..0x%08x: never executed at run time\n",
                c.head, c.tail);
            continue;
        }
        out += detail::vformat(
            "  loop 0x%08x..0x%08x: %llu entries, %llu iterations, "
            "affine %u/%u replayed, conflict-free %u/%u confirmed%s\n",
            c.head, c.tail, (unsigned long long)c.entries,
            (unsigned long long)c.iterations, c.affine_ok,
            c.affine_streams, c.bank_ok, c.bank_streams,
            c.ok() ? "" : "  FAILED");
        for (const std::string &f : c.failures)
            out += "    FAIL " + f + "\n";
    }
    return out;
}

std::string
renderStreamValidationJson(const StreamValidation &r)
{
    std::string out = detail::vformat(
        "{\n  \"workload\": \"%s\",\n  \"config\": \"%s\",\n"
        "  \"regions_entered\": %llu,\n  \"regions_static\": %llu,\n"
        "  \"loops_entered\": %llu,\n  \"loops_static\": %llu,\n"
        "  \"ok\": %s,\n  \"regions\": [",
        r.workload.c_str(), r.config.c_str(),
        (unsigned long long)r.regions_entered,
        (unsigned long long)r.regions_static,
        (unsigned long long)r.loops_entered,
        (unsigned long long)r.loops_static,
        r.ok() ? "true" : "false");
    bool first = true;
    for (const StreamRegionCheck &c : r.regions) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "    {\"pc\": \"0x%08x\", \"entries\": %llu, "
            "\"threads\": %llu, \"affine_streams\": %u, "
            "\"affine_ok\": %u, \"bank_streams\": %u, "
            "\"bank_ok\": %u, \"launch_ok\": %s, \"failures\": [",
            c.pc, (unsigned long long)c.entries,
            (unsigned long long)c.threads, c.affine_streams,
            c.affine_ok, c.bank_streams, c.bank_ok,
            c.launch_ok ? "true" : "false");
        bool ffirst = true;
        for (const std::string &f : c.failures) {
            out += ffirst ? "\"" : ", \"";
            ffirst = false;
            out += f + "\"";
        }
        out += "]}";
    }
    out += first ? "],\n  \"loops\": [" : "\n  ],\n  \"loops\": [";
    first = true;
    for (const StreamLoopCheck &c : r.loops) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "    {\"head\": \"0x%08x\", \"tail\": \"0x%08x\", "
            "\"entries\": %llu, \"iterations\": %llu, "
            "\"affine_streams\": %u, \"affine_ok\": %u, "
            "\"bank_streams\": %u, \"bank_ok\": %u, \"failures\": [",
            c.head, c.tail, (unsigned long long)c.entries,
            (unsigned long long)c.iterations, c.affine_streams,
            c.affine_ok, c.bank_streams, c.bank_ok);
        bool ffirst = true;
        for (const std::string &f : c.failures) {
            out += ffirst ? "\"" : ", \"";
            ffirst = false;
            out += f + "\"";
        }
        out += "]}";
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace diag::harness
