#include "harness/validate.hpp"

#include <cmath>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/cluster.hpp"
#include "harness/runner.hpp"
#include "host/parallel.hpp"

namespace diag::harness
{

analysis::BoundParams
boundParamsFrom(const core::DiagConfig &cfg)
{
    analysis::BoundParams p;
    p.segment_size = cfg.segment_size;
    p.inter_cluster_latch = cfg.inter_cluster_latch;
    p.mem_lane_latency = cfg.mem_lane_latency;
    p.line_buffer_latency = cfg.line_buffer_latency;
    p.l1d_hit_latency = cfg.mem.l1d.hit_latency;
    p.l1i_hit_latency = cfg.mem.l1i.hit_latency;
    p.bus_iline_transfer = cfg.bus_iline_transfer;
    p.decode_latency = cfg.decode_latency;
    p.squash_resteer = cfg.squash_resteer;
    p.lsu_issue_occupancy = cfg.lsu_issue_occupancy;
    p.mem_lane_entries = cfg.mem_lane_entries;
    p.line_buf_entries = core::Cluster::kLineBufEntries;
    p.l1d_line_bytes = cfg.mem.l1d.line_bytes;
    p.l1d_banks = cfg.mem.l1d.banks;
    p.l1d_bank_occupancy = cfg.mem.l1d.bank_occupancy;
    return p;
}

analysis::LintOptions
lintOptionsFor(const core::DiagConfig &cfg)
{
    analysis::LintOptions opt = analysis::LintOptions::abiEntry();
    opt.line_bytes = cfg.pes_per_cluster * 4;
    opt.clusters_per_ring = cfg.clustersPerRing();
    opt.simt_enabled = cfg.simt_enabled;
    opt.timing = boundParamsFrom(cfg);
    return opt;
}

bool
ValidationReport::ok() const
{
    if (!ok_program)
        return false;
    for (const auto &r : regions)
        if (!r.ok_bound || !r.ok_pred)
            return false;
    return true;
}

ValidationReport
validateBound(const core::DiagConfig &cfg, const workloads::Workload &w,
              bool use_simt, double slack)
{
    ValidationReport rep;
    rep.workload = w.name;
    rep.config = cfg.name;
    rep.simt = use_simt;

    const Program prog = assembler::assemble(
        use_simt ? w.asm_simt : w.asm_serial);
    const analysis::ProgramAnalysis an =
        analysis::analyzeProgram(prog, lintOptionsFor(cfg));

    RunSpec spec;
    spec.threads = 1;
    spec.use_simt = use_simt;
    const EngineRun run = runOnDiag(cfg, w, spec);
    rep.measured_cycles = static_cast<double>(run.stats.cycles);

    // Per-region checks against the counters the ring recorded.
    double piped_insts = 0;
    double region_lb = 0;
    for (const auto &r : an.bound.regions) {
        RegionCheck c;
        c.pc = r.simt_s_pc;
        c.entries = run.stats.counters.get(
            detail::vformat("simt_region_%08x_entries", r.simt_s_pc));
        c.threads = run.stats.counters.get(
            detail::vformat("simt_region_%08x_threads", r.simt_s_pc));
        c.measured = run.stats.counters.get(
            detail::vformat("simt_region_%08x_cycles", r.simt_s_pc));
        if (c.entries <= 0) {
            // Region never pipelined at run time (not reached, or the
            // control unit rejected it): nothing to compare.
            rep.regions.push_back(c);
            continue;
        }
        c.lower_bound = r.lowerBound(c.threads, c.entries);
        c.predicted = r.predict(c.threads, c.entries);
        c.bottleneck = r.bottleneck(c.threads, c.entries);
        c.ok_bound = c.measured + 1e-9 >= c.lower_bound;
        c.err = c.measured > 0
                    ? std::abs(c.predicted - c.measured) / c.measured
                    : 0.0;
        c.ok_pred = c.err <= slack;
        region_lb += c.lower_bound;
        // body + the simt_s/simt_e markers retire per pipelined thread
        piped_insts += c.threads * (r.body_insts + 2);
        rep.regions.push_back(c);
    }

    // Whole-program bound: region bounds plus the serial instructions.
    // Serial activations retire at most one I-line (pes_per_cluster
    // instructions) per inter-cluster latch, so their span is at least
    // latch * ceil(serial / pes_per_cluster) cycles.
    const double serial = std::max(
        0.0, static_cast<double>(run.stats.instructions) - piped_insts);
    rep.program_lower_bound =
        region_lb +
        static_cast<double>(cfg.inter_cluster_latch) *
            std::ceil(serial / static_cast<double>(cfg.pes_per_cluster));
    rep.ok_program =
        rep.measured_cycles + 1e-9 >= rep.program_lower_bound;
    return rep;
}

std::vector<ValidationReport>
validateBoundMany(const std::vector<BoundCell> &cells, unsigned jobs)
{
    return host::parallelMap<ValidationReport>(
        jobs, cells.size(), [&cells](size_t i) {
            const BoundCell &c = cells[i];
            panic_if(c.w == nullptr, "bound cell %zu has no workload",
                     i);
            return validateBound(c.cfg, *c.w, c.use_simt, c.slack);
        });
}

std::string
renderValidation(const ValidationReport &r)
{
    std::string out = detail::vformat(
        "%s [%s]%s: measured %.0f cycles, program bound %.0f  %s\n",
        r.workload.c_str(), r.config.c_str(), r.simt ? " (simt)" : "",
        r.measured_cycles, r.program_lower_bound,
        r.ok_program ? "ok" : "VIOLATED");
    for (const auto &c : r.regions) {
        if (c.entries <= 0) {
            out += detail::vformat(
                "  region 0x%08x: never pipelined at run time\n", c.pc);
            continue;
        }
        out += detail::vformat(
            "  region 0x%08x: %.0f entries, %.0f threads, measured "
            "%.0f, bound %.0f%s, predicted %.0f (err %.1f%%%s, "
            "bottleneck: %s)\n",
            c.pc, c.entries, c.threads, c.measured, c.lower_bound,
            c.ok_bound ? "" : " VIOLATED", c.predicted, c.err * 100.0,
            c.ok_pred ? "" : ", OVER SLACK", c.bottleneck.c_str());
    }
    return out;
}

std::string
renderValidationJson(const ValidationReport &r)
{
    std::string out = detail::vformat(
        "{\n  \"workload\": \"%s\",\n  \"config\": \"%s\",\n"
        "  \"simt\": %s,\n  \"measured_cycles\": %.0f,\n"
        "  \"program_lower_bound\": %.0f,\n  \"ok\": %s,\n"
        "  \"regions\": [",
        r.workload.c_str(), r.config.c_str(),
        r.simt ? "true" : "false", r.measured_cycles,
        r.program_lower_bound, r.ok() ? "true" : "false");
    bool first = true;
    for (const auto &c : r.regions) {
        out += first ? "\n" : ",\n";
        first = false;
        out += detail::vformat(
            "    {\"pc\": \"0x%08x\", \"entries\": %.0f, "
            "\"threads\": %.0f, \"measured\": %.0f, "
            "\"lower_bound\": %.0f, \"predicted\": %.0f, "
            "\"err\": %.4f, \"bottleneck\": \"%s\", "
            "\"ok_bound\": %s, \"ok_pred\": %s}",
            c.pc, c.entries, c.threads, c.measured, c.lower_bound,
            c.predicted, c.err, c.bottleneck.c_str(),
            c.ok_bound ? "true" : "false", c.ok_pred ? "true" : "false");
    }
    out += first ? "]\n}\n" : "\n  ]\n}\n";
    return out;
}

} // namespace diag::harness
