#include "harness/cli.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "common/log.hpp"

namespace diag::harness
{

ArgParser::ArgParser(std::string tool, std::string operands_name)
    : tool_(std::move(tool)), operands_name_(std::move(operands_name))
{
}

ArgParser &
ArgParser::add(std::string name, Flag::Kind kind, void *target,
               std::string metavar, std::string help)
{
    flags_.push_back({std::move(name), kind, target,
                      std::move(metavar), std::move(help)});
    return *this;
}

ArgParser &
ArgParser::flag(std::string name, bool *target, std::string help)
{
    return add(std::move(name), Flag::Kind::Bool, target, "",
               std::move(help));
}

ArgParser &
ArgParser::option(std::string name, std::string *target,
                  std::string metavar, std::string help)
{
    return add(std::move(name), Flag::Kind::String, target,
               std::move(metavar), std::move(help));
}

ArgParser &
ArgParser::option(std::string name, unsigned *target,
                  std::string metavar, std::string help)
{
    return add(std::move(name), Flag::Kind::Unsigned, target,
               std::move(metavar), std::move(help));
}

ArgParser &
ArgParser::option(std::string name, u64 *target, std::string metavar,
                  std::string help)
{
    return add(std::move(name), Flag::Kind::U64, target,
               std::move(metavar), std::move(help));
}

ArgParser &
ArgParser::option(std::string name, double *target,
                  std::string metavar, std::string help)
{
    return add(std::move(name), Flag::Kind::Double, target,
               std::move(metavar), std::move(help));
}

ArgParser &
ArgParser::operands(std::vector<std::string> *target)
{
    operands_ = target;
    return *this;
}

ArgParser &
ArgParser::configFlag(std::string *target)
{
    return option("--config", target, "I4C2|F4C2|F4C16|F4C32",
                  "DiAG preset (default " + *target + ")");
}

ArgParser &
ArgParser::jobsFlag(unsigned *target)
{
    return option("--jobs", target, "N",
                  "host threads (default: hardware concurrency); "
                  "output is byte-identical for any N");
}

ArgParser &
ArgParser::seedFlag(u64 *target)
{
    return option("--seed", target, "S",
                  "base seed; reruns are bit-identical");
}

ArgParser &
ArgParser::jsonFlag(bool *target)
{
    return flag("--json", target, "emit machine-readable JSON");
}

ArgParser &
ArgParser::sarifFlag(bool *target)
{
    return flag("--sarif", target,
                "emit SARIF 2.1.0 (findings only)");
}

ArgParser &
ArgParser::werrorFlag(bool *target)
{
    return flag("--werror", target,
                "treat warnings as errors (exit status)");
}

void
ArgParser::usage() const
{
    std::printf("usage: %s [options]%s%s\n", tool_.c_str(),
                operands_name_.empty() ? "" : " ",
                operands_name_.c_str());
    for (const Flag &f : flags_) {
        std::string head = "  " + f.name;
        if (!f.metavar.empty())
            head += " " + f.metavar;
        if (head.size() < 24)
            head.resize(24, ' ');
        else
            head += " ";
        std::printf("%s%s\n", head.c_str(), f.help.c_str());
    }
}

ArgParser::Status
ArgParser::usageError(const char *fmt, ...) const
{
    va_list ap;
    va_start(ap, fmt);
    char msg[256];
    std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "%s: error: %s\n", tool_.c_str(), msg);
    usage();
    return Status::Usage;
}

ArgParser::Status
ArgParser::parse(int argc, char **argv) const
{
    // Flags are set-once: a duplicate is a confused invocation (a
    // forgotten edit, a copy-pasted pair with different values) and
    // which one wins should never be a silent coin flip.
    std::vector<const Flag *> seen;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage();
            return Status::Help;
        }
        if (!arg.empty() && arg[0] != '-') {
            if (operands_ == nullptr)
                return usageError("unexpected operand '%s'",
                                  arg.c_str());
            operands_->push_back(arg);
            continue;
        }
        // Both "--flag VALUE" and "--flag=VALUE" are accepted.
        std::string inline_val;
        bool has_inline = false;
        if (const size_t eq = arg.find('=');
            eq != std::string::npos) {
            inline_val = arg.substr(eq + 1);
            arg.resize(eq);
            has_inline = true;
        }
        const Flag *match = nullptr;
        for (const Flag &f : flags_)
            if (f.name == arg) {
                match = &f;
                break;
            }
        if (match == nullptr)
            return usageError("unknown flag '%s'", arg.c_str());
        if (std::find(seen.begin(), seen.end(), match) != seen.end())
            return usageError("duplicate flag %s", arg.c_str());
        seen.push_back(match);
        if (match->kind == Flag::Kind::Bool) {
            if (has_inline)
                return usageError("flag %s takes no value",
                                  arg.c_str());
            *static_cast<bool *>(match->target) = true;
            continue;
        }
        if (!has_inline && i + 1 >= argc)
            return usageError("missing value for %s", arg.c_str());
        const std::string value =
            has_inline ? inline_val : argv[++i];
        // Numeric flags must consume the whole value: "12x", "", and
        // out-of-range all get the same crisp diagnostic instead of a
        // silent truncation or an uncaught std::invalid_argument.
        try {
            size_t used = 0;
            switch (match->kind) {
              case Flag::Kind::String:
                *static_cast<std::string *>(match->target) = value;
                break;
              case Flag::Kind::Unsigned: {
                const unsigned long v = std::stoul(value, &used);
                if (used != value.size() ||
                    v > std::numeric_limits<unsigned>::max())
                    throw std::invalid_argument(value);
                *static_cast<unsigned *>(match->target) =
                    static_cast<unsigned>(v);
                break;
              }
              case Flag::Kind::U64:
                *static_cast<u64 *>(match->target) =
                    std::stoull(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
                break;
              case Flag::Kind::Double:
                *static_cast<double *>(match->target) =
                    std::stod(value, &used);
                if (used != value.size())
                    throw std::invalid_argument(value);
                break;
              case Flag::Kind::Bool:
                break;
            }
        } catch (const std::exception &) {
            return usageError(
                "bad value '%s' for %s (%s expected)", value.c_str(),
                arg.c_str(),
                match->kind == Flag::Kind::Double ? "a number"
                                                  : "an integer");
        }
    }
    return Status::Run;
}

bool
tryConfigByName(const std::string &name, core::DiagConfig *out)
{
    if (name == "I4C2")
        *out = core::DiagConfig::i4c2();
    else if (name == "F4C2")
        *out = core::DiagConfig::f4c2();
    else if (name == "F4C16")
        *out = core::DiagConfig::f4c16();
    else if (name == "F4C32")
        *out = core::DiagConfig::f4c32();
    else
        return false;
    return true;
}

core::DiagConfig
configByName(const std::string &name)
{
    core::DiagConfig cfg;
    fatal_if(!tryConfigByName(name, &cfg),
             "unknown DiAG configuration '%s'", name.c_str());
    return cfg;
}

core::DiagConfig
configWithRings(const std::string &name, unsigned rings)
{
    core::DiagConfig cfg = configByName(name);
    if (rings != 0)
        cfg.num_rings = rings;
    return cfg;
}

} // namespace diag::harness
