/**
 * @file
 * Experiment runner: executes workloads on the DiAG model and the OoO
 * baseline under the paper's configurations, validates outputs, and
 * returns cycles + energy for the table/figure benches.
 */
#ifndef DIAG_HARNESS_RUNNER_HPP
#define DIAG_HARNESS_RUNNER_HPP

#include <memory>
#include <string>
#include <vector>

#include "diag/config.hpp"
#include "energy/report.hpp"
#include "host/cancel.hpp"
#include "obs/sim_profile.hpp"
#include "ooo/config.hpp"
#include "sim/run_stats.hpp"
#include "trace/addr_trace.hpp"
#include "trace/tracer.hpp"
#include "workloads/workload.hpp"

namespace diag::harness
{

/** How to execute a workload. */
struct RunSpec
{
    unsigned threads = 1;   //!< software threads (a1 value)
    bool use_simt = false;  //!< run the simt-annotated variant
    /** Return failed runs (timeout/trap/check miss) to the caller
     *  instead of fatal()ing — campaign/CLI drivers classify them. */
    bool tolerate_failures = false;
    /** When set, runOnDiag creates a Tracer with this configuration
     *  inside the owning worker, attaches it for the run, and returns
     *  it in EngineRun::trace — the confinement pattern that keeps
     *  traces byte-identical for any --jobs value (DESIGN.md §11).
     *  The pointee must outlive the run. Ignored by the OoO baseline
     *  (no trace hooks). */
    const trace::TraceConfig *trace = nullptr;
    /** When true, runOnDiag creates a trace::AddrTrace inside the
     *  owning worker, attaches it for the run, and returns it in
     *  EngineRun::addrs — the per-instruction address log the stream
     *  validator replays against predicted affine maps (DESIGN.md
     *  §14). Same confinement rules as `trace`. Ignored by the OoO
     *  baseline. */
    bool record_addrs = false;
    /** When true, runOnDiag creates an obs::SimProfile inside the
     *  owning worker, attaches it for the run, and returns it in
     *  EngineRun::obs — skip-idle fast-path coverage (DESIGN.md §16).
     *  Unlike `trace`, a profile never disqualifies the loop batcher;
     *  cycles and counters are identical either way. Ignored by the
     *  OoO baseline. */
    bool obs = false;
    /** When set, the engine polls this token at activation boundaries
     *  and a fired token (explicit cancel or expired wall-clock
     *  deadline) stops the run with RunStats::timed_out and a
     *  "host watchdog: ..." stop_reason. Pair with tolerate_failures
     *  so the stop comes back to the caller instead of fatal()ing.
     *  The pointee must outlive the run. */
    const host::CancelToken *cancel = nullptr;
};

/** One engine execution result. */
struct EngineRun
{
    sim::RunStats stats;
    energy::EnergyReport energy;
    bool checked = false;  //!< output check passed
    /** The run's tracer when RunSpec::trace was set (else null). Only
     *  read it after the owning worker completed — i.e. after
     *  runOnDiag/runMatrix returned. */
    std::shared_ptr<trace::Tracer> trace;
    /** The run's address log when RunSpec::record_addrs was set (else
     *  null). Same read-after-worker rule as `trace`. */
    std::shared_ptr<trace::AddrTrace> addrs;
    /** The run's skip-idle self-profile when RunSpec::obs was set
     *  (else null). Same read-after-worker rule as `trace`. */
    std::shared_ptr<obs::SimProfile> obs;
};

/** Run @p w on a DiAG configuration. */
EngineRun runOnDiag(const core::DiagConfig &cfg,
                    const workloads::Workload &w, const RunSpec &spec);

/** Run @p w on the OoO baseline. */
EngineRun runOnOoo(const ooo::OooConfig &cfg,
                   const workloads::Workload &w, const RunSpec &spec);

/**
 * One cell of a host-parallel execution matrix: a (workload, engine
 * configuration, run spec) triple. The workload pointer must outlive
 * runMatrix(); cells share it read-only.
 */
struct MatrixCell
{
    const workloads::Workload *w = nullptr;
    RunSpec spec;
    bool on_diag = true;        //!< false = OoO baseline
    core::DiagConfig diag_cfg;  //!< engine config when on_diag
    ooo::OooConfig ooo_cfg;     //!< engine config when !on_diag
};

/**
 * Execute every cell on up to @p jobs host threads (0 = one per
 * hardware thread), each cell on its own simulator instance, and
 * return results in cell order regardless of the job count. This is
 * the fan-out path of the figure benches and sweep drivers.
 */
std::vector<EngineRun> runMatrix(const std::vector<MatrixCell> &cells,
                                 unsigned jobs);

// ---- configuration presets used by the figures ----

/** DiAG single-thread configs for Fig. 9a/10a: F4C2/F4C16/F4C32. */
std::vector<core::DiagConfig> diagSingleThreadConfigs();

/** The paper's multithread arrangement: 16 rings x 2 clusters. */
core::DiagConfig diagMultiThreadConfig();

/**
 * The MT+SIMT arrangement: rings are chained pairwise (§5.1: "multiple
 * rings can be chained together to form a larger ring") giving 8 rings
 * of 4 clusters so pipelined regions up to 64 instructions fit.
 */
core::DiagConfig diagMtSimtConfig();

/** Thread counts used for the MT figures. */
inline constexpr unsigned kDiagMtThreads = 16;
inline constexpr unsigned kDiagMtSimtThreads = 8;
inline constexpr unsigned kOooMtThreads = 12;  // 12-core baseline

} // namespace diag::harness

#endif // DIAG_HARNESS_RUNNER_HPP
