/**
 * @file
 * Fixed-width table rendering and small statistics helpers for the
 * bench binaries that regenerate the paper's tables and figures.
 */
#ifndef DIAG_HARNESS_TABLE_HPP
#define DIAG_HARNESS_TABLE_HPP

#include <string>
#include <vector>

#include "common/types.hpp"

namespace diag::harness
{

/** A column-aligned text table with a title and header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append one data row. */
    void row(std::vector<std::string> cells);

    /** Render to stdout. */
    void print() const;

    /** Format a double with @p digits decimals. */
    static std::string num(double value, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Geometric mean of @p values (which must be positive). */
double geomean(const std::vector<double> &values);

} // namespace diag::harness

#endif // DIAG_HARNESS_TABLE_HPP
