#include "harness/runner.hpp"

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "energy/diag_energy.hpp"
#include "energy/ooo_energy.hpp"
#include "host/parallel.hpp"
#include "ooo/processor.hpp"

namespace diag::harness
{

using workloads::Workload;

namespace
{

const std::string &
variantSource(const Workload &w, const RunSpec &spec)
{
    if (spec.use_simt) {
        fatal_if(w.asm_simt.empty(), "%s has no simt variant",
                 w.name.c_str());
        return w.asm_simt;
    }
    return w.asm_serial;
}

unsigned
effectiveThreads(const Workload &w, const RunSpec &spec)
{
    return w.partitionable ? spec.threads : 1;
}

/**
 * Strict lint: a bundled workload must be free of error-level static
 * findings before we spend cycles simulating it.
 */
void
lintOrDie(const Program &prog, const Workload &w)
{
    const analysis::LintResult lint =
        analysis::lintProgram(prog, analysis::LintOptions::abiEntry());
    if (lint.errors() > 0)
        fatal("workload %s rejected by the static analyzer:\n%s",
              w.name.c_str(), analysis::renderText(lint).c_str());
}

} // namespace

EngineRun
runOnDiag(const core::DiagConfig &cfg, const Workload &w,
          const RunSpec &spec)
{
    const Program prog =
        assembler::assemble(variantSource(w, spec));
    lintOrDie(prog, w);
    core::DiagProcessor proc(cfg);
    proc.loadProgram(prog);
    w.init(proc.memory());
    proc.warmCaches();  // steady-state methodology (paper §7.1)
    const unsigned threads = effectiveThreads(w, spec);
    std::vector<core::ThreadSpec> specs;
    for (unsigned t = 0; t < threads; ++t)
        specs.push_back({prog.entry,
                         {{isa::RegId{10}, t},
                          {isa::RegId{11}, threads}}});
    EngineRun run;
    if (spec.trace) {
        // Created here, inside the worker that owns `proc`, so the
        // unsynchronized tracer never crosses a thread (DESIGN.md §11).
        run.trace = std::make_shared<trace::Tracer>(*spec.trace);
        proc.attachTrace(run.trace.get());
    }
    if (spec.record_addrs) {
        run.addrs = std::make_shared<trace::AddrTrace>();
        proc.attachAddrTrace(run.addrs.get());
    }
    if (spec.obs) {
        run.obs = std::make_shared<obs::SimProfile>();
        proc.attachObs(run.obs.get());
    }
    if (spec.cancel)
        proc.attachCancel(spec.cancel);
    run.stats = proc.runThreads(prog, specs, w.max_insts);
    proc.attachTrace(nullptr);
    proc.attachAddrTrace(nullptr);
    proc.attachObs(nullptr);
    proc.attachCancel(nullptr);
    if (!run.stats.halted) {
        const char *why = run.stats.stop_reason.empty()
                              ? "did not halt"
                              : run.stats.stop_reason.c_str();
        fatal_if(!spec.tolerate_failures, "diag run of %s stopped: %s",
                 w.name.c_str(), why);
        warn("diag run of %s stopped: %s", w.name.c_str(), why);
        run.energy = energy::diagEnergy(cfg, run.stats);
        return run;
    }
    run.checked = w.check(proc.memory());
    fatal_if(!run.checked && !spec.tolerate_failures,
             "diag run of %s failed its output check", w.name.c_str());
    run.energy = energy::diagEnergy(cfg, run.stats);
    return run;
}

EngineRun
runOnOoo(const ooo::OooConfig &cfg, const Workload &w,
         const RunSpec &spec)
{
    fatal_if(spec.use_simt, "the OoO baseline has no simt hardware");
    const Program prog = assembler::assemble(w.asm_serial);
    lintOrDie(prog, w);
    ooo::OooProcessor proc(cfg);
    proc.loadProgram(prog);
    w.init(proc.memory());
    proc.warmCaches();  // steady-state methodology (paper §7.1)
    const unsigned threads = effectiveThreads(w, spec);
    std::vector<ooo::ThreadSpec> specs;
    for (unsigned t = 0; t < threads; ++t)
        specs.push_back({prog.entry,
                         {{isa::RegId{10}, t},
                          {isa::RegId{11}, threads}}});
    EngineRun run;
    if (spec.cancel)
        proc.attachCancel(spec.cancel);
    run.stats = proc.runThreads(prog, specs, w.max_insts);
    proc.attachCancel(nullptr);
    if (!run.stats.halted) {
        const char *why = run.stats.stop_reason.empty()
                              ? "did not halt"
                              : run.stats.stop_reason.c_str();
        fatal_if(!spec.tolerate_failures, "ooo run of %s stopped: %s",
                 w.name.c_str(), why);
        warn("ooo run of %s stopped: %s", w.name.c_str(), why);
        run.energy = energy::oooEnergy(cfg, run.stats);
        return run;
    }
    run.checked = w.check(proc.memory());
    fatal_if(!run.checked && !spec.tolerate_failures,
             "ooo run of %s failed its output check", w.name.c_str());
    run.energy = energy::oooEnergy(cfg, run.stats);
    return run;
}

std::vector<EngineRun>
runMatrix(const std::vector<MatrixCell> &cells, unsigned jobs)
{
    return host::parallelMap<EngineRun>(
        jobs, cells.size(), [&cells](size_t i) {
            const MatrixCell &c = cells[i];
            panic_if(c.w == nullptr, "matrix cell %zu has no workload",
                     i);
            return c.on_diag ? runOnDiag(c.diag_cfg, *c.w, c.spec)
                             : runOnOoo(c.ooo_cfg, *c.w, c.spec);
        });
}

std::vector<core::DiagConfig>
diagSingleThreadConfigs()
{
    return {core::DiagConfig::f4c2(), core::DiagConfig::f4c16(),
            core::DiagConfig::f4c32()};
}

core::DiagConfig
diagMultiThreadConfig()
{
    return core::DiagConfig::f4c32MultiRing();
}

core::DiagConfig
diagMtSimtConfig()
{
    core::DiagConfig cfg = core::DiagConfig::f4c32();
    cfg.name = "F4C32-8x4-simt";
    cfg.num_rings = 8;
    return cfg;
}

} // namespace diag::harness
