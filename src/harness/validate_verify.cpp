#include "harness/validate_verify.hpp"

#include <algorithm>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "harness/validate.hpp"
#include "host/cancel.hpp"
#include "host/parallel.hpp"
#include "ooo/processor.hpp"
#include "sim/golden.hpp"

namespace diag::harness
{

namespace
{

using analysis::PropertyKind;
using analysis::Verdict;

/** Byte-compare two sparse memories over the union of their pages. */
bool
memEqual(const SparseMemory &a, const SparseMemory &b)
{
    std::vector<Addr> pages;
    a.forEachPage([&](Addr base) { pages.push_back(base); });
    b.forEachPage([&](Addr base) { pages.push_back(base); });
    std::sort(pages.begin(), pages.end());
    pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
    for (const Addr base : pages)
        for (Addr off = 0; off < SparseMemory::kPageSize; off += 4)
            if (a.read32(base + off) != b.read32(base + off))
                return false;
    return true;
}

bool
isDiv(isa::Op op)
{
    return op == isa::Op::DIV || op == isa::Op::DIVU ||
           op == isa::Op::REM || op == isa::Op::REMU;
}

/** [addr, addr+size) lies inside one of the program's chunks. */
bool
inChunks(const Program &prog, Addr addr, unsigned size)
{
    for (const ProgramChunk &c : prog.chunks)
        if (addr >= c.base &&
            static_cast<u64>(addr) + size <=
                static_cast<u64>(c.base) + c.size)
            return true;
    return false;
}

std::string
summarize(const analysis::VerifyResult &vr)
{
    std::string s;
    for (const auto &p : vr.props) {
        if (!s.empty())
            s += " ";
        s += detail::vformat("%s=%s",
                             analysis::propertyName(p.kind),
                             analysis::verdictName(p.verdict));
    }
    for (const auto &r : vr.regions)
        s += detail::vformat(" region@0x%x[race=%s,deadlock=%s]",
                             r.simt_s_pc,
                             analysis::verdictName(r.race),
                             analysis::verdictName(r.deadlock));
    return s;
}

void
countVerdicts(const analysis::VerifyResult &vr, VerifyCheck &c)
{
    const auto tally = [&](Verdict v) {
        if (v == Verdict::Proven)
            ++c.proofs;
        else if (v == Verdict::Refuted)
            ++c.refutations;
    };
    for (const auto &p : vr.props)
        tally(p.verdict);
    for (const auto &r : vr.regions) {
        tally(r.race);
        tally(r.deadlock);
    }
}

/**
 * Check one (Proven|Refuted) safety verdict against the event the
 * golden execution observed. Appends a failure message when the
 * verdict is unsound (proof contradicted by an observation) or bogus
 * (refutation on a halting run that never shows the event).
 */
void
checkEventVerdict(const analysis::VerifyResult &vr, PropertyKind kind,
                  bool observed, bool golden_halted, VerifyCheck &c)
{
    const Verdict v = vr.prop(kind).verdict;
    if (v == Verdict::Proven && observed)
        c.failures.push_back(detail::vformat(
            "UNSOUND: %s proven, but the golden execution observed "
            "the event",
            analysis::propertyName(kind)));
    if (v == Verdict::Refuted && golden_halted && !observed)
        c.failures.push_back(detail::vformat(
            "BOGUS REFUTATION: %s refuted, but the golden execution "
            "halted without the event",
            analysis::propertyName(kind)));
}

} // namespace

sim::FuzzOptions
fuzzOptionsFor(u64 seed, FuzzProfile profile)
{
    if (profile == FuzzProfile::Mixed)
        profile = (seed % 2 == 0) ? FuzzProfile::Scalar
                                  : FuzzProfile::Simt;
    sim::FuzzOptions fo;
    fo.seed = seed;
    fo.hazard_pct = 30;
    if (profile == FuzzProfile::Simt) {
        fo.use_simt = true;
        fo.simt_regions = 1 + static_cast<unsigned>(seed % 3);
        fo.segments = 8;
        // No calls: jalr-free programs let control safety *prove*,
        // and keep every address computation statically resolvable.
        fo.use_calls = false;
    }
    return fo;
}

VerifyCheck
validateVerify(const core::DiagConfig &cfg, const sim::FuzzOptions &fo,
               u64 max_insts, u64 host_timeout_ms)
{
    // One watchdog spans the whole check: golden stepping and both
    // engine runs share the budget, so the sum is bounded too.
    host::CancelToken watchdog;
    if (host_timeout_ms > 0)
        watchdog = host::CancelToken::withTimeout(host_timeout_ms);
    VerifyCheck c;
    c.seed = fo.seed;
    const sim::FuzzProgram fp = sim::generateFuzzProgramEx(fo);
    c.has_simt = fp.has_simt;
    c.racy = fp.racy;
    c.injected_div0 = fp.div0;
    c.injected_misaligned = fp.misaligned;
    c.injected_oob = fp.oob;

    const Program prog = assembler::assemble(fp.source);

    // 1. The verifier's verdicts. Fuzz programs define their own
    // registers; the ABI entry convention does not apply.
    analysis::VerifyOptions vo;
    vo.lint = lintOptionsFor(cfg);
    vo.lint.entry_defined = analysis::RegSet{};
    const analysis::VerifyResult vr = analysis::verifyProgram(prog, vo);
    c.verdicts = summarize(vr);
    countVerdicts(vr, c);

    // 2. Golden execution, observing the events the verdicts are
    // about. The divisor is read *before* the step (rd may alias
    // rs2); misalignment/out-of-map are judged on the access the
    // step actually performed.
    sim::GoldenSim gold(prog);
    for (u64 n = 0; n < max_insts && !gold.halted(); ++n) {
        if ((n & 4095) == 0 && watchdog.expired()) {
            c.host_timed_out = true;
            return c;
        }
        const isa::DecodedInst di = gold.decodeAt(gold.pc());
        if (isDiv(di.op) && gold.reg(di.rs2) == 0)
            c.obs_div0 = true;
        const sim::StepInfo si = gold.step();
        if (si.faulted) {
            c.golden_faulted = true;
            break;
        }
        if (si.is_mem) {
            const unsigned size = di.info().memBytes;
            if (size > 1 && si.mem_addr % size != 0)
                c.obs_misaligned = true;
            if (!inChunks(prog, si.mem_addr, size))
                c.obs_oob = true;
        }
        if (si.halted)
            break;
    }
    c.golden_halted = gold.halted();

    // 3. Soundness of the event verdicts.
    if (vr.prop(PropertyKind::ControlSafe).verdict ==
            Verdict::Proven &&
        c.golden_faulted)
        c.failures.push_back(
            "UNSOUND: control safety proven, but the golden "
            "execution faulted");
    checkEventVerdict(vr, PropertyKind::NoDivByZero, c.obs_div0,
                      c.golden_halted, c);
    checkEventVerdict(vr, PropertyKind::NoMisaligned,
                      c.obs_misaligned, c.golden_halted, c);
    checkEventVerdict(vr, PropertyKind::NoOutOfBounds, c.obs_oob,
                      c.golden_halted, c);

    // 4. Race verdicts against the generator's constructive ground
    // truth: regions with an injected overlap may not prove safe,
    // and clean regions may not be refuted.
    unsigned race_not_proven = 0, race_refuted = 0;
    for (const auto &r : vr.regions) {
        if (r.race != Verdict::Proven)
            ++race_not_proven;
        if (r.race == Verdict::Refuted)
            ++race_refuted;
    }
    if (race_not_proven < fp.racy_regions)
        c.failures.push_back(detail::vformat(
            "UNSOUND: %u region(s) carry an injected cross-thread "
            "race but only %u escaped a race-freedom proof",
            fp.racy_regions, race_not_proven));
    if (race_refuted > fp.racy_regions)
        c.failures.push_back(detail::vformat(
            "BOGUS REFUTATION: %u region(s) refuted as racy, but "
            "only %u have an injected race (the rest are disjoint "
            "by construction)",
            race_refuted, fp.racy_regions));
    // Generated regions always use a positive constant step: a
    // livelock refutation would be fabricated.
    for (const auto &r : vr.regions)
        if (r.deadlock == Verdict::Refuted)
            c.failures.push_back(detail::vformat(
                "BOGUS REFUTATION: region 0x%08x refuted as "
                "deadlocking, but every generated region has a "
                "positive constant step",
                r.simt_s_pc));

    // 5. DiAG execution: deadlock-freedom proofs must be matched by
    // an actual halt, and the proven thread count must equal what
    // the ring's token counters measured. Lint strictness is off:
    // racy programs carry deliberate memdep errors.
    core::DiagConfig dcfg = cfg;
    dcfg.lint_enabled = false;
    dcfg.verify_enabled = false;
    core::DiagProcessor dproc(dcfg);
    dproc.attachCancel(&watchdog);
    const sim::RunStats drs = dproc.run(prog, max_insts);
    dproc.attachCancel(nullptr);
    // A host-watchdog stop says nothing about the program: the check
    // is incomplete, not a soundness failure.
    if (drs.timed_out && drs.stop_reason.find("host watchdog") !=
                             std::string::npos) {
        c.host_timed_out = true;
        return c;
    }
    const bool diag_halted = drs.halted && !drs.timed_out;
    for (const auto &r : vr.regions) {
        if (r.deadlock != Verdict::Proven)
            continue;
        if (!diag_halted)
            c.failures.push_back(detail::vformat(
                "UNSOUND: deadlock-freedom proven for region 0x%08x "
                "but the DiAG run did not halt (%s)",
                r.simt_s_pc,
                drs.stop_reason.empty() ? "timeout"
                                        : drs.stop_reason.c_str()));
    }
    for (const auto &r : vr.regions) {
        if (r.deadlock != Verdict::Proven || !diag_halted)
            continue;
        const double entries = drs.counters.get(detail::vformat(
            "simt_region_%08x_entries", r.simt_s_pc));
        const double threads = drs.counters.get(detail::vformat(
            "simt_region_%08x_threads", r.simt_s_pc));
        if (entries > 0 &&
            threads !=
                entries * static_cast<double>(r.threads))
            c.failures.push_back(detail::vformat(
                "TOKEN CONSERVATION: region 0x%08x proven to run "
                "%llu thread(s) per entry, but the ring measured "
                "%.0f threads over %.0f entries",
                r.simt_s_pc,
                static_cast<unsigned long long>(r.threads), threads,
                entries));
    }

    // 6. The classic differential check: DiAG and OoO architectural
    // state against golden. Racy programs are timing-dependent by
    // design, and a non-halting golden has no final state.
    if (!fp.racy && c.golden_halted && diag_halted) {
        bool match = memEqual(dproc.memory(), gold.memory());
        for (unsigned i = 0; match && i < isa::kNumRegs; ++i)
            match = dproc.finalReg(
                        0, static_cast<isa::RegId>(i)) ==
                    gold.reg(static_cast<isa::RegId>(i));
        if (!match) {
            c.engines_match = false;
            c.failures.push_back(
                "ENGINE MISMATCH: DiAG architectural state differs "
                "from golden");
        }
        ooo::OooProcessor oproc(ooo::OooConfig::baseline8());
        oproc.attachCancel(&watchdog);
        const sim::RunStats ors = oproc.run(prog, max_insts);
        oproc.attachCancel(nullptr);
        if (ors.timed_out && ors.stop_reason.find(
                                 "host watchdog") !=
                                 std::string::npos) {
            c.host_timed_out = true;
            return c;
        }
        bool omatch = ors.halted && !ors.timed_out &&
                      memEqual(oproc.memory(), gold.memory());
        for (unsigned i = 0; omatch && i < isa::kNumRegs; ++i)
            omatch = oproc.finalReg(
                         0, static_cast<isa::RegId>(i)) ==
                     gold.reg(static_cast<isa::RegId>(i));
        if (!omatch) {
            c.engines_match = false;
            c.failures.push_back(
                "ENGINE MISMATCH: OoO architectural state differs "
                "from golden");
        }
    }

    if (!c.ok())
        c.source = fp.source;
    return c;
}

VerifyFuzzReport
runVerifyFuzz(const core::DiagConfig &cfg, u64 base_seed,
              unsigned count, unsigned jobs, FuzzProfile profile,
              u64 host_timeout_ms)
{
    VerifyFuzzReport rep;
    rep.base_seed = base_seed;
    rep.programs = count;
    rep.checks = host::parallelMap<VerifyCheck>(
        jobs, count,
        [&cfg, base_seed, profile, host_timeout_ms](size_t n) {
            return validateVerify(
                cfg, fuzzOptionsFor(base_seed + n, profile),
                2'000'000, host_timeout_ms);
        });
    for (const VerifyCheck &c : rep.checks) {
        rep.proofs += c.proofs;
        rep.refutations += c.refutations;
        if (c.host_timed_out)
            ++rep.host_timed_out;
        else if (!c.ok())
            ++rep.failed;
    }
    return rep;
}

std::string
renderVerifyFuzz(const VerifyFuzzReport &r, bool verbose)
{
    std::string out;
    for (const VerifyCheck &c : r.checks) {
        if (c.ok() && !c.host_timed_out && !verbose)
            continue;
        out += detail::vformat(
            "seed %llu:%s %s\n",
            static_cast<unsigned long long>(c.seed),
            c.host_timed_out ? " HOST-TIMEOUT"
                             : (c.ok() ? " ok" : " FAIL"),
            c.verdicts.c_str());
        for (const std::string &f : c.failures)
            out += "  " + f + "\n";
    }
    out += detail::vformat(
        "verify-fuzz: %u/%u programs held up (%u proofs, %u "
        "refutations cross-checked, %u host timeout(s), base seed "
        "%llu)\n",
        r.programs - r.failed - r.host_timed_out, r.programs,
        r.proofs, r.refutations, r.host_timed_out,
        static_cast<unsigned long long>(r.base_seed));
    return out;
}

} // namespace diag::harness
