/**
 * @file
 * The observability core's contracts (DESIGN.md §16): log2 histogram
 * bucket boundaries and merge algebra, byte-stable key-sorted registry
 * dumps, shard-merge invariance for any job count, the skip-idle
 * self-profile's zero-overhead guarantee (a profiled run is cycle- and
 * counter-identical to an unprofiled one), and soak-report metric
 * determinism across --jobs.
 */
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "harness/runner.hpp"
#include "host/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/serve_obs.hpp"
#include "obs/sim_profile.hpp"
#include "serve/soak.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::obs;

namespace
{

TEST(ObsHistogram, BucketBoundaries)
{
    // Bucket 0 is the value 0; bucket k >= 1 is [2^(k-1), 2^k).
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(7), 3u);
    EXPECT_EQ(Histogram::bucketOf(8), 4u);
    EXPECT_EQ(Histogram::bucketOf(1023), 10u);
    EXPECT_EQ(Histogram::bucketOf(1024), 11u);
    EXPECT_EQ(Histogram::bucketOf(~u64{0}), 64u);

    EXPECT_EQ(Histogram::upperOf(0), 0u);
    EXPECT_EQ(Histogram::upperOf(1), 1u);
    EXPECT_EQ(Histogram::upperOf(2), 3u);
    EXPECT_EQ(Histogram::upperOf(10), 1023u);
    EXPECT_EQ(Histogram::upperOf(64), ~u64{0});

    // Every value lands in a bucket whose bounds contain it.
    for (u64 v : {u64{1},   u64{5},    u64{100},
                  u64{999}, u64{4096}, u64{1} << 40}) {
        const unsigned b = Histogram::bucketOf(v);
        EXPECT_LE(v, Histogram::upperOf(b)) << v;
        if (b > 0) {
            EXPECT_GT(v, Histogram::upperOf(b - 1)) << v;
        }
    }
}

TEST(ObsHistogram, PercentilesNeverExceedTheExactMax)
{
    Histogram h;
    for (u64 v = 0; v < 100; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 4950u);
    EXPECT_EQ(h.max(), 99u);
    // p100-ish percentiles report a bucket upper bound capped at the
    // recorded max; lower ones report their bucket's bound.
    EXPECT_LE(h.percentile(50), h.percentile(95));
    EXPECT_LE(h.percentile(95), h.percentile(99));
    EXPECT_LE(h.percentile(99), h.max());
    // An empty histogram reports zeros.
    Histogram e;
    EXPECT_EQ(e.percentile(50), 0u);
    EXPECT_EQ(e.max(), 0u);
}

TEST(ObsHistogram, MergeIsBucketwiseSum)
{
    Histogram a, b, combined;
    for (u64 v = 0; v < 64; ++v) {
        (v % 2 ? a : b).record(v * 17 % 300);
        combined.record(v * 17 % 300);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), combined.count());
    EXPECT_EQ(a.sum(), combined.sum());
    EXPECT_EQ(a.max(), combined.max());
    for (unsigned k = 0; k < Histogram::kBuckets; ++k)
        EXPECT_EQ(a.bucket(k), combined.bucket(k)) << k;
}

TEST(ObsRegistry, DumpIsByteStableAndKeySorted)
{
    MetricRegistry reg("t");
    reg.inc("zeta", 3);
    reg.inc("alpha");
    reg.maxGauge("depth", 7);
    reg.maxGauge("depth", 4); // high-watermark keeps 7
    reg.observe("lat", 0);
    reg.observe("lat", 9);
    const std::string a = reg.toJson();
    EXPECT_EQ(a, reg.toJson());
    // std::map keys dump sorted: alpha before zeta.
    EXPECT_LT(a.find("\"alpha\""), a.find("\"zeta\""));
    EXPECT_NE(a.find("\"depth\": 7"), std::string::npos);
    EXPECT_NE(a.find("\"p50\""), std::string::npos);
    EXPECT_EQ(a.back(), '\n');
}

TEST(ObsRegistry, ShardMergeIsJobCountInvariant)
{
    // The same 600 deterministic samples, sharded three different
    // ways and merged in task-index order, must dump byte-identically
    // — the property that makes per-worker metric shards safe under
    // any --jobs value.
    const auto sample = [](size_t i) { return (i * 2654435761u) % 5000; };
    std::string golden;
    for (unsigned nshards : {1u, 4u, 16u}) {
        const std::vector<MetricRegistry> shards =
            host::parallelMap<MetricRegistry>(
                nshards, nshards, [&](size_t shard) {
                    MetricRegistry r;
                    for (size_t i = shard; i < 600; i += nshards) {
                        r.inc("items");
                        r.inc(i % 3 ? "odd_ish" : "third");
                        r.maxGauge("peak", sample(i));
                        r.observe("value", sample(i));
                    }
                    return r;
                });
        const std::string dump =
            mergeShards("sharded", shards).toJson();
        if (golden.empty())
            golden = dump;
        EXPECT_EQ(dump, golden) << nshards << " shards";
    }
    EXPECT_NE(golden.find("\"items\": 600"), std::string::npos);
}

TEST(ObsProfile, ReasonNamesAndMergeAlgebra)
{
    for (unsigned r = 0; r < kReasonCount; ++r)
        EXPECT_STRNE(batchReasonName(r), "unknown") << r;
    SimProfile a, b;
    a.dense_activations = 10;
    a.batched_iterations = 30;
    a.disqualified[kReasonInteriorMem] = 2;
    b.dense_activations = 5;
    b.batch_jumps = 1;
    b.disqualified[kReasonInteriorMem] = 1;
    b.disqualified[kReasonNotSelfLoop] = 4;
    a.merge(b);
    EXPECT_EQ(a.dense_activations, 15u);
    EXPECT_EQ(a.batch_jumps, 1u);
    EXPECT_EQ(a.disqualified[kReasonInteriorMem], 3u);
    EXPECT_EQ(a.disqualifiedTotal(), 7u);
    EXPECT_DOUBLE_EQ(a.batchedFraction(), 30.0 / 45.0);
}

/** Run @p name on the diag engine, optionally self-profiled. */
harness::EngineRun
runWorkload(const std::string &name, bool simt, bool obs)
{
    const workloads::Workload w = workloads::findWorkload(name);
    harness::RunSpec spec;
    spec.threads = 1;
    spec.use_simt = simt;
    spec.obs = obs;
    return harness::runOnDiag(core::DiagConfig::f4c32(), w, spec);
}

TEST(ObsOverhead, ProfiledRunIsCycleAndCounterIdentical)
{
    const harness::EngineRun plain = runWorkload("kmeans", true,
                                                 false);
    const harness::EngineRun profiled = runWorkload("kmeans", true,
                                                    true);
    EXPECT_FALSE(plain.obs);
    ASSERT_TRUE(profiled.obs);
    // The profile only tallies its own u64s — every cycle the model
    // computes and every counter it increments must be unchanged.
    EXPECT_EQ(profiled.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(profiled.stats.instructions, plain.stats.instructions);
    EXPECT_EQ(profiled.stats.counters.all(),
              plain.stats.counters.all());
    // And it saw the run: activations flowed through some path.
    EXPECT_GT(profiled.obs->dense_activations +
                  profiled.obs->simt_activations +
                  profiled.obs->batched_iterations,
              0u);
}

TEST(ObsProfile, BatcherCoverageOnASteadyLoop)
{
    // The bench kernel: a 2000-iteration self-loop the skip-idle
    // batcher covers almost entirely.
    const char *kernel = R"(
        _start:
            li a0, 0
            li a1, 2000
        loop:
            addi t0, a0, 3
            slli t1, t0, 2
            xor t2, t1, a0
            and t3, t2, t1
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )";
    const Program p = assembler::assemble(kernel);
    SimProfile prof;
    core::DiagProcessor proc(core::DiagConfig::f4c32());
    proc.attachObs(&prof);
    const sim::RunStats rs = proc.run(p);
    proc.attachObs(nullptr);
    ASSERT_TRUE(rs.halted);
    EXPECT_GT(prof.lines_batchable, 0u);
    EXPECT_GT(prof.batch_jumps, 0u);
    EXPECT_GT(prof.batched_iterations, 1000u);
    EXPECT_GT(prof.batchedFraction(), 0.5);
    // A profiled run must not change the numbers either.
    core::DiagProcessor bare(core::DiagConfig::f4c32());
    const sim::RunStats rs2 = bare.run(p);
    EXPECT_EQ(rs.cycles, rs2.cycles);
    EXPECT_EQ(rs.instructions, rs2.instructions);
    EXPECT_EQ(rs.counters.all(), rs2.counters.all());
}

TEST(ObsSoak, ReportBytesAreJobCountInvariant)
{
    serve::SoakSpec sp;
    sp.requests = 80;
    sp.faults.crash_pct = 5.0;
    sp.faults.stall_pct = 2.0;
    sp.faults.corrupt_pct = 10.0;
    sp.jobs = 1;
    const serve::SoakReport one = serve::runSoak(sp);
    sp.jobs = 4;
    const serve::SoakReport four = serve::runSoak(sp);
    EXPECT_EQ(serve::renderSoakJson(sp, one),
              serve::renderSoakJson(sp, four));
    EXPECT_EQ(one.obs.reg.toJson(), four.obs.reg.toJson());
    EXPECT_EQ(one.obs.spans.size(), four.obs.spans.size());
}

TEST(ObsSoak, ReportCarriesStageHistograms)
{
    serve::SoakSpec sp;
    sp.requests = 60;
    const serve::SoakReport rep = serve::runSoak(sp);
    EXPECT_TRUE(rep.robust());
    const Histogram *total = rep.obs.reg.histogram("total_ms");
    ASSERT_NE(total, nullptr);
    // Every request resolves exactly once into total_ms.
    EXPECT_EQ(total->count(), rep.requests);
    const Histogram *qwait = rep.obs.reg.histogram("queue_wait_ms");
    ASSERT_NE(qwait, nullptr);
    EXPECT_GT(qwait->count(), 0u);
    // Registry counters mirror the report tallies.
    EXPECT_EQ(rep.obs.reg.counter("ok"), rep.ok);
    EXPECT_EQ(rep.obs.reg.counter("cache_hits"), rep.cache.hits);
    EXPECT_LE(total->percentile(50), total->percentile(99));
    EXPECT_LE(total->percentile(99), total->max());
    // Spans exist and carry the queue + worker track taxonomy.
    EXPECT_FALSE(rep.obs.spans.empty());
    bool saw_queue = false, saw_attempt = false;
    for (const trace::SpanEvent &s : rep.obs.spans) {
        saw_queue = saw_queue || s.cat == "queue";
        saw_attempt = saw_attempt || s.cat == "attempt";
    }
    EXPECT_TRUE(saw_queue);
    EXPECT_TRUE(saw_attempt);
}

} // namespace
