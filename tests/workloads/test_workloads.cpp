/** Workload validation: every kernel assembles, runs to completion on
 *  the golden simulator, and produces the reference outputs — for the
 *  serial, multithreaded (partitioned), and simt variants. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "sim/golden.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::sim;
using namespace diag::workloads;

namespace
{

/** Run one variant on the golden model with the given thread count
 *  (threads execute sequentially; partitions are disjoint, so the
 *  result equals a parallel execution). */
u64
goldenRun(const Workload &w, const std::string &src, u32 threads,
          SparseMemory &out_mem)
{
    const Program p = assembler::assemble(src);
    u64 total_insts = 0;
    SparseMemory state;
    {
        GoldenSim loader(p);
        w.init(loader.memory());
        state = loader.memory();
    }
    for (u32 t = 0; t < threads; ++t) {
        GoldenSim sim(p);
        sim.memory() = state;
        sim.setReg(10, t);        // a0 = tid
        sim.setReg(11, threads);  // a1 = nthreads
        const RunResult r = sim.run(w.max_insts);
        EXPECT_TRUE(r.halted)
            << w.name << " thread " << t << " did not halt";
        EXPECT_FALSE(r.faulted) << w.name << " faulted";
        total_insts += r.inst_count;
        state = sim.memory();
    }
    out_mem = state;
    return total_insts;
}

class WorkloadSerial : public ::testing::TestWithParam<std::string>
{};

class WorkloadMt : public ::testing::TestWithParam<std::string>
{};

class WorkloadSimt : public ::testing::TestWithParam<std::string>
{};

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &w : rodiniaSuite())
        names.push_back(w.name);
    for (const auto &w : specSuite())
        names.push_back(w.name);
    return names;
}

std::vector<std::string>
simtNames()
{
    std::vector<std::string> names;
    for (const auto &w : rodiniaSuite())
        if (!w.asm_simt.empty())
            names.push_back(w.name);
    for (const auto &w : specSuite())
        if (!w.asm_simt.empty())
            names.push_back(w.name);
    return names;
}

} // namespace

TEST_P(WorkloadSerial, GoldenRunPassesCheck)
{
    const Workload w = findWorkload(GetParam());
    SparseMemory mem;
    const u64 insts = goldenRun(w, w.asm_serial, 1, mem);
    EXPECT_TRUE(w.check(mem)) << w.name << " output check failed";
    // Workloads are sized for tractable cycle-level simulation.
    EXPECT_GT(insts, 10'000u) << w.name << " too small";
    EXPECT_LT(insts, 2'000'000u) << w.name << " too large";
}

TEST_P(WorkloadMt, PartitionedRunPassesCheck)
{
    const Workload w = findWorkload(GetParam());
    if (!w.partitionable)
        GTEST_SKIP() << w.name << " is not partitionable";
    for (const u32 threads : {4u, 12u, 16u}) {
        SparseMemory mem;
        goldenRun(w, w.asm_serial, threads, mem);
        EXPECT_TRUE(w.check(mem))
            << w.name << " with " << threads << " threads";
    }
}

TEST_P(WorkloadSimt, SimtVariantPassesCheck)
{
    const Workload w = findWorkload(GetParam());
    ASSERT_FALSE(w.asm_simt.empty());
    SparseMemory mem;
    goldenRun(w, w.asm_simt, 1, mem);
    EXPECT_TRUE(w.check(mem)) << w.name << " simt output check failed";
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSerial,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });
INSTANTIATE_TEST_SUITE_P(All, WorkloadMt,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });
INSTANTIATE_TEST_SUITE_P(All, WorkloadSimt,
                         ::testing::ValuesIn(simtNames()),
                         [](const auto &info) { return info.param; });

TEST(Workloads, SuiteShapes)
{
    EXPECT_EQ(rodiniaSuite().size(), 12u);
    EXPECT_EQ(specSuite().size(), 8u);
    // The paper pipelines a subset of benchmarks (purple bars).
    EXPECT_GE(simtNames().size(), 8u);
}
