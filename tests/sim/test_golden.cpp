/** Golden-simulator tests: end-to-end programs through the assembler. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::assembler;
using namespace diag::isa;
using namespace diag::sim;

namespace
{

GoldenSim
runProgram(const std::string &src, u64 max_insts = 1'000'000)
{
    const Program p = assemble(src);
    GoldenSim sim(p);
    const RunResult r = sim.run(max_insts);
    EXPECT_TRUE(r.halted) << "program did not halt";
    return sim;
}

} // namespace

TEST(Golden, SumLoop)
{
    GoldenSim sim = runProgram(R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 101
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 5050u);  // 1+2+...+100
}

TEST(Golden, Fibonacci)
{
    GoldenSim sim = runProgram(R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 10
        loop:
            add a3, a0, a1
            mv a0, a1
            mv a1, a3
            addi a2, a2, -1
            bnez a2, loop
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 55u);  // fib(10)
}

TEST(Golden, MemoryReadWrite)
{
    GoldenSim sim = runProgram(R"(
        .data
        arr: .word 10, 20, 30, 40
        out: .space 4
        .text
        _start:
            la t0, arr
            lw t1, 0(t0)
            lw t2, 4(t0)
            lw t3, 8(t0)
            lw t4, 12(t0)
            add t1, t1, t2
            add t1, t1, t3
            add t1, t1, t4
            la t5, out
            sw t1, 0(t5)
            lw a0, 0(t5)
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 100u);
}

TEST(Golden, SubWordAccesses)
{
    GoldenSim sim = runProgram(R"(
        .data
        buf: .space 8
        .text
        _start:
            la t0, buf
            li t1, 0x80
            sb t1, 0(t0)
            lb a0, 0(t0)     # sign-extends to -128
            lbu a1, 0(t0)    # zero-extends to 128
            li t2, 0x8000
            sh t2, 4(t0)
            lh a2, 4(t0)
            lhu a3, 4(t0)
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 0xffffff80u);
    EXPECT_EQ(sim.reg(11), 0x80u);
    EXPECT_EQ(sim.reg(12), 0xffff8000u);
    EXPECT_EQ(sim.reg(13), 0x8000u);
}

TEST(Golden, FunctionCallAndReturn)
{
    GoldenSim sim = runProgram(R"(
        _start:
            li a0, 6
            call square
            mv s0, a0
            li a0, 7
            call square
            add a0, a0, s0
            ebreak
        square:
            mul a0, a0, a0
            ret
    )");
    EXPECT_EQ(sim.reg(10), 85u);  // 36 + 49
}

TEST(Golden, FloatingPointKernel)
{
    // Dot product of two 4-element vectors via fmadd.
    GoldenSim sim = runProgram(R"(
        .data
        va: .float 1.0, 2.0, 3.0, 4.0
        vb: .float 0.5, 1.5, 2.5, 3.5
        .text
        _start:
            la t0, va
            la t1, vb
            li t2, 4
            fmv.w.x fa0, x0
        loop:
            flw ft0, 0(t0)
            flw ft1, 0(t1)
            fmadd.s fa0, ft0, ft1, fa0
            addi t0, t0, 4
            addi t1, t1, 4
            addi t2, t2, -1
            bnez t2, loop
            fmv.x.w a0, fa0
            ebreak
    )");
    // 0.5 + 3 + 7.5 + 14 = 25
    EXPECT_EQ(sim.reg(10), 0x41c80000u);  // 25.0f
}

TEST(Golden, FpControlFlow)
{
    GoldenSim sim = runProgram(R"(
        _start:
            li t0, 3
            fcvt.s.w ft0, t0
            li t1, 4
            fcvt.s.w ft1, t1
            fmul.s ft2, ft0, ft0
            fmul.s ft3, ft1, ft1
            fadd.s ft4, ft2, ft3
            fsqrt.s ft5, ft4
            fcvt.w.s a0, ft5
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 5u);  // hypot(3,4)
}

TEST(Golden, X0AlwaysZero)
{
    GoldenSim sim = runProgram(R"(
        _start:
            addi x0, x0, 100
            add a0, x0, x0
            ebreak
    )");
    EXPECT_EQ(sim.reg(10), 0u);
    EXPECT_EQ(sim.reg(0), 0u);
}

TEST(Golden, SimtLoopScalarSemantics)
{
    // A simt-annotated loop behaves exactly like a scalar loop when
    // interpreted: rc steps by r_step until it reaches r_end.
    GoldenSim sim = runProgram(R"(
        .data
        acc: .word 0
        .text
        _start:
            li a0, 0          # rc
            li a1, 1          # step
            li a2, 8          # end
            li s0, 0          # accumulator
        head:
            simt_s a0, a1, a2, 1
            add s0, s0, a0
            simt_e a0, a2, head
            la t0, acc
            sw s0, 0(t0)
            ebreak
    )");
    EXPECT_EQ(sim.reg(8), 0u + 1 + 2 + 3 + 4 + 5 + 6 + 7);
    EXPECT_EQ(sim.memory().read32(sim.reg(5)), 28u);
}

TEST(Golden, HaltsOnInvalid)
{
    const Program p = assemble(".word 0\n");
    GoldenSim sim(p);
    const RunResult r = sim.run(10);
    EXPECT_TRUE(r.faulted);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.inst_count, 0u);
}

TEST(Golden, MaxInstLimit)
{
    const Program p = assemble("_start: j _start\n");
    GoldenSim sim(p);
    const RunResult r = sim.run(100);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.inst_count, 100u);
}

TEST(Golden, TraceHookObservesRetirement)
{
    const Program p = assemble(R"(
        _start:
            li a0, 5
            li a1, 6
            add a2, a0, a1
            ebreak
    )");
    GoldenSim sim(p);
    int count = 0;
    u32 last_rd_value = 0;
    sim.setTraceHook([&](const StepInfo &info) {
        ++count;
        if (info.wrote_reg)
            last_rd_value = info.rd_value;
    });
    sim.run(100);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(last_rd_value, 11u);
}

TEST(Golden, StepInfoForMemoryOps)
{
    const Program p = assemble(R"(
        .data
        v: .word 77
        .text
        _start:
            la t0, v
            lw a0, 0(t0)
            sw a0, 4(t0)
            ebreak
    )");
    GoldenSim sim(p);
    sim.step();  // lui
    sim.step();  // addi
    const StepInfo ld = sim.step();
    EXPECT_TRUE(ld.is_mem);
    EXPECT_EQ(ld.mem_value, 77u);
    const StepInfo st = sim.step();
    EXPECT_TRUE(st.is_mem);
    EXPECT_EQ(st.mem_addr, ld.mem_addr + 4);
}
