/**
 * Fuzz generator determinism and the differential verify corpus.
 *
 * The generator is a pure function of its options: the same (seed,
 * index) must produce a byte-identical program no matter how many
 * host workers the corpus is fanned out over, so a failing seed from
 * CI reproduces locally with --jobs 1. On top, a small seeded corpus
 * runs through the full verifier cross-validation as a regression
 * guard: an unsound proof on any of these seeds fails here before it
 * fails CI.
 */
#include <gtest/gtest.h>

#include <string>

#include "diag/config.hpp"
#include "harness/validate_verify.hpp"
#include "sim/fuzz.hpp"

using namespace diag;

TEST(FuzzDeterminism, SameSeedSameProgram)
{
    sim::FuzzOptions fo;
    fo.seed = 12345;
    fo.use_simt = true;
    fo.hazard_pct = 30;
    const sim::FuzzProgram a = sim::generateFuzzProgramEx(fo);
    const sim::FuzzProgram b = sim::generateFuzzProgramEx(fo);
    EXPECT_EQ(a.source, b.source);
    EXPECT_EQ(a.racy, b.racy);
    EXPECT_EQ(a.racy_regions, b.racy_regions);
    EXPECT_EQ(a.div0, b.div0);
    EXPECT_EQ(a.misaligned, b.misaligned);
    EXPECT_EQ(a.oob, b.oob);
}

TEST(FuzzDeterminism, DifferentSeedsDiffer)
{
    sim::FuzzOptions fo;
    fo.seed = 1;
    const std::string a = sim::generateFuzzProgram(fo);
    fo.seed = 2;
    const std::string b = sim::generateFuzzProgram(fo);
    EXPECT_NE(a, b);
}

TEST(FuzzDeterminism, SimtKnobsOffPreserveLegacyPrograms)
{
    // With the new knobs at their defaults the generator must emit
    // exactly what it always emitted: the SIMT/hazard extension may
    // not perturb the existing diff-fuzz corpus.
    sim::FuzzOptions fo;
    fo.seed = 77;
    const sim::FuzzProgram p = sim::generateFuzzProgramEx(fo);
    EXPECT_FALSE(p.has_simt);
    EXPECT_FALSE(p.racy);
    EXPECT_FALSE(p.div0 || p.misaligned || p.oob);
    EXPECT_EQ(p.source, sim::generateFuzzProgram(fo));
    EXPECT_EQ(p.source.find("simt_s"), std::string::npos);
}

TEST(FuzzDeterminism, SimtProfileEmitsRegions)
{
    const sim::FuzzOptions fo =
        harness::fuzzOptionsFor(501, harness::FuzzProfile::Simt);
    const sim::FuzzProgram p = sim::generateFuzzProgramEx(fo);
    EXPECT_TRUE(p.has_simt);
    EXPECT_GE(p.regions, 1u);
    EXPECT_NE(p.source.find("simt_s"), std::string::npos);
    EXPECT_NE(p.source.find("simt_e"), std::string::npos);
}

TEST(VerifyFuzz, CorpusIsByteStableForAnyJobs)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c2();
    const harness::VerifyFuzzReport serial = harness::runVerifyFuzz(
        cfg, 4242, 12, 1, harness::FuzzProfile::Mixed);
    const harness::VerifyFuzzReport fanned = harness::runVerifyFuzz(
        cfg, 4242, 12, 4, harness::FuzzProfile::Mixed);
    EXPECT_EQ(harness::renderVerifyFuzz(serial, true),
              harness::renderVerifyFuzz(fanned, true));
    ASSERT_EQ(serial.checks.size(), fanned.checks.size());
    for (size_t i = 0; i < serial.checks.size(); ++i) {
        EXPECT_EQ(serial.checks[i].seed, fanned.checks[i].seed);
        EXPECT_EQ(serial.checks[i].verdicts,
                  fanned.checks[i].verdicts);
    }
}

TEST(VerifyFuzz, SeededCorpusHoldsUp)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c2();
    const harness::VerifyFuzzReport rep = harness::runVerifyFuzz(
        cfg, 900, 24, 0, harness::FuzzProfile::Mixed);
    EXPECT_TRUE(rep.ok()) << harness::renderVerifyFuzz(rep, true);
    EXPECT_EQ(rep.programs, 24u);
    // The corpus must actually exercise the verifier: proofs and
    // refutations both get cross-checked, not just unknowns.
    EXPECT_GT(rep.proofs, 0u);
    EXPECT_GT(rep.refutations, 0u);
}

TEST(VerifyFuzz, RacyProgramsAreGeneratedAndCaught)
{
    // Across a window of simt seeds the generator injects races and
    // the verifier must never prove such a region race-free (that
    // exact soundness check lives inside validateVerify).
    unsigned racy = 0;
    for (u64 seed = 600; seed < 640; ++seed) {
        const sim::FuzzOptions fo =
            harness::fuzzOptionsFor(seed, harness::FuzzProfile::Simt);
        racy += sim::generateFuzzProgramEx(fo).racy ? 1 : 0;
    }
    EXPECT_GT(racy, 0u);
}
