/** Watchdog tests: the cycle ceiling and stagnation tripwires, and
 *  their end-to-end wiring — a livelocked program must come back as a
 *  structured timeout from both engines, not spin forever. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "fault/watchdog.hpp"
#include "ooo/processor.hpp"

using namespace diag;
using namespace diag::fault;

TEST(Watchdog, CycleCeiling)
{
    Watchdog wd(1000);
    EXPECT_FALSE(wd.onCycle(999));
    EXPECT_FALSE(wd.onCycle(1000));
    EXPECT_TRUE(wd.onCycle(1001));
    EXPECT_NE(wd.reason().find("cycle ceiling"), std::string::npos);
}

TEST(Watchdog, ZeroCeilingDisablesCycleCheck)
{
    Watchdog wd(0);
    EXPECT_FALSE(wd.onCycle(~u64{0}));
}

TEST(Watchdog, StagnationFiresAfterLimit)
{
    // The first observation baselines the counter; the limit counts
    // *stalled* boundaries after it.
    Watchdog wd(0, /*stall_limit=*/16);
    for (int i = 0; i < 16; ++i)
        EXPECT_FALSE(wd.onProgress(42));
    EXPECT_TRUE(wd.onProgress(42));
    EXPECT_NE(wd.reason().find("no forward progress"),
              std::string::npos);
}

TEST(Watchdog, ProgressResetsStagnation)
{
    Watchdog wd(0, /*stall_limit=*/4);
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(wd.onProgress(7));
    EXPECT_FALSE(wd.onProgress(8));  // advanced: counter resets
    for (int i = 0; i < 3; ++i)
        EXPECT_FALSE(wd.onProgress(8));
    EXPECT_TRUE(wd.onProgress(8));
}

TEST(Watchdog, DiagLivelockBecomesStructuredTimeout)
{
    const Program p = assembler::assemble(R"(
        _start:
        spin:
            jal x0, spin
    )");
    core::DiagConfig cfg = core::DiagConfig::f4c2();
    cfg.lint_enabled = false;  // the lint would reject the livelock
    cfg.max_cycles = 20'000;
    core::DiagProcessor proc(cfg);
    const sim::RunStats rs = proc.run(p);
    EXPECT_FALSE(rs.halted);
    EXPECT_TRUE(rs.timed_out);
    EXPECT_FALSE(rs.faulted);
    EXPECT_NE(rs.stop_reason.find("watchdog"), std::string::npos);
}

TEST(Watchdog, OooLivelockBecomesStructuredTimeout)
{
    const Program p = assembler::assemble(R"(
        _start:
        spin:
            jal x0, spin
    )");
    ooo::OooConfig cfg = ooo::OooConfig::baseline8();
    cfg.max_cycles = 20'000;
    ooo::OooProcessor proc(cfg);
    const sim::RunStats rs = proc.run(p);
    EXPECT_FALSE(rs.halted);
    EXPECT_TRUE(rs.timed_out);
    EXPECT_FALSE(rs.stop_reason.empty());
}

TEST(Watchdog, InstructionBudgetIsAlsoStructured)
{
    // Exhausting max_insts (not max_cycles) must report the same
    // structured shape rather than a silent non-halt.
    const Program p = assembler::assemble(R"(
        _start:
            li a0, 0
        spin:
            addi a0, a0, 1
            jal x0, spin
    )");
    core::DiagConfig cfg = core::DiagConfig::f4c2();
    cfg.lint_enabled = false;
    core::DiagProcessor proc(cfg);
    const sim::RunStats rs = proc.run(p, /*max_insts=*/5'000);
    EXPECT_FALSE(rs.halted);
    EXPECT_TRUE(rs.timed_out);
    EXPECT_NE(rs.stop_reason.find("budget"), std::string::npos);
}
