/** End-to-end fault-injection tests: zero-cost-off hooks, parity and
 *  lockstep detection with rollback recovery, PE-stuck cluster
 *  degradation, and campaign determinism. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "fault/campaign.hpp"
#include "fault/controller.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::fault;

namespace
{

/** ~600 retired instructions, result 5050 in a0; fits one line. */
const char *kSumLoop = R"(
    _start:
        li a0, 0
        li a1, 1
        li a2, 101
    loop:
        add a0, a0, a1
        addi a1, a1, 1
        bne a1, a2, loop
        ebreak
)";

std::unique_ptr<LockstepOracle>
makeOracle(const Program &prog)
{
    return std::make_unique<LockstepOracle>(sim::GoldenSim(prog));
}

} // namespace

TEST(FaultInjection, EmptyControllerIsCycleNeutral)
{
    // The zero-cost-off criterion, strengthened: even an *attached*
    // controller with no events and no detectors must not perturb
    // timing — the hooks only branch, they never charge cycles.
    const Program p = assembler::assemble(kSumLoop);

    DiagProcessor bare(DiagConfig::f4c2());
    const sim::RunStats base = bare.run(p);
    ASSERT_TRUE(base.halted);

    FaultController fc(FaultPlan{}, DetectConfig{});
    DiagProcessor faulty(DiagConfig::f4c2());
    faulty.attachFaults(&fc);
    const sim::RunStats rs = faulty.run(p);
    ASSERT_TRUE(rs.halted);

    EXPECT_EQ(rs.cycles, base.cycles);
    EXPECT_EQ(rs.instructions, base.instructions);
    EXPECT_EQ(faulty.finalReg(0, 10), 5050u);
}

TEST(FaultInjection, ParityDetectsLaneFlipAndRecovers)
{
    const Program p = assembler::assemble(kSumLoop);

    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.site = FaultSite::RegLaneValue;
    ev.trigger = 50;  // mid-loop, well before the ~600th retirement
    ev.lane = 10;     // a0, the accumulator
    ev.bit = 7;
    plan.events.push_back(ev);

    DetectConfig det;
    det.parity = true;
    FaultController fc(std::move(plan), det);

    DiagProcessor proc(DiagConfig::f4c2());
    proc.attachFaults(&fc);
    const sim::RunStats rs = proc.run(p);

    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(fc.tally().parity_detections, 1u);
    EXPECT_EQ(fc.tally().recoveries, 1u);
    EXPECT_TRUE(fc.allFired());
    // Rollback restored the clean lane file: the sum is still right.
    EXPECT_EQ(proc.finalReg(0, 10), 5050u);
    EXPECT_EQ(rs.counters.get("fault_recoveries"), 1.0);
}

TEST(FaultInjection, UndetectedLaneFlipCorruptsResult)
{
    // Sanity check on the fault path itself: with every detector off,
    // the same flip must actually corrupt the architectural result
    // (otherwise the detection tests above prove nothing).
    const Program p = assembler::assemble(kSumLoop);

    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.site = FaultSite::RegLaneValue;
    ev.trigger = 50;
    ev.lane = 10;
    ev.bit = 7;
    plan.events.push_back(ev);

    FaultController fc(std::move(plan), DetectConfig{});
    DiagProcessor proc(DiagConfig::f4c2());
    proc.attachFaults(&fc);
    const sim::RunStats rs = proc.run(p);

    EXPECT_TRUE(rs.halted);
    EXPECT_TRUE(fc.allFired());
    EXPECT_NE(proc.finalReg(0, 10), 5050u);
}

TEST(FaultInjection, LockstepDetectsPeResultFlip)
{
    const Program p = assembler::assemble(kSumLoop);

    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.site = FaultSite::PeResult;
    ev.trigger = 60;
    ev.cluster = 0;  // the single loop line lands on cluster 0 first
    ev.pe = 3;       // the add's slot within the line
    ev.bit = 12;
    plan.events.push_back(ev);

    DetectConfig det;
    det.lockstep = true;
    FaultController fc(std::move(plan), det);
    fc.attachOracle(makeOracle(p));

    DiagProcessor proc(DiagConfig::f4c2());
    proc.attachFaults(&fc);
    const sim::RunStats rs = proc.run(p);

    EXPECT_TRUE(rs.halted);
    EXPECT_GE(fc.tally().lockstep_detections, 1u);
    EXPECT_GE(fc.tally().recoveries, 1u);
    // The transient flip is one-shot: re-execution after rollback is
    // clean, so the architectural result is intact.
    EXPECT_EQ(proc.finalReg(0, 10), 5050u);
}

TEST(FaultInjection, StuckPeDisablesClusterAndCompletes)
{
    const Program p = assembler::assemble(kSumLoop);

    // Fault-free reference timing.
    DiagProcessor ref(DiagConfig::f4c16());
    const sim::RunStats base = ref.run(p);
    ASSERT_TRUE(base.halted);

    FaultPlan plan;
    plan.seed = 1;
    FaultEvent ev;
    ev.site = FaultSite::PeStuck;
    ev.trigger = 30;
    ev.cluster = 0;
    ev.pe = 3;
    ev.stuck_value = 0xdeadbeef;
    plan.events.push_back(ev);

    DetectConfig det;
    det.lockstep = true;
    FaultController fc(std::move(plan), det);
    fc.attachOracle(makeOracle(p));

    // 16 clusters: the ring can afford to take one offline.
    DiagProcessor proc(DiagConfig::f4c16());
    proc.attachFaults(&fc);
    const sim::RunStats rs = proc.run(p);

    EXPECT_TRUE(rs.halted);
    // A permanent fault keeps diverging until the blame counter takes
    // the cluster offline, after which the remap executes cleanly.
    EXPECT_GE(fc.tally().lockstep_detections, 2u);
    EXPECT_EQ(fc.tally().clusters_disabled, 1u);
    EXPECT_EQ(rs.counters.get("clusters_disabled"), 1.0);
    EXPECT_EQ(proc.finalReg(0, 10), 5050u);
    // Degraded, not free: rollbacks and remapping cost cycles.
    EXPECT_GT(rs.cycles, base.cycles);
}

TEST(FaultInjection, CampaignJsonIsBitReproducible)
{
    CampaignSpec spec;
    spec.workload = "lud";
    spec.seed = 77;
    spec.trials = 3;
    const CampaignReport a = runCampaign(spec);
    const CampaignReport b = runCampaign(spec);
    EXPECT_EQ(a.renderJson(), b.renderJson());
    EXPECT_EQ(a.trials.size(), 3u);
}

TEST(FaultInjection, LaneCampaignHasNoUndetectedSdc)
{
    // The headline resilience claim: with parity + lockstep armed,
    // register-lane upsets never escape as silent data corruption.
    CampaignSpec spec;
    spec.workload = "lud";
    spec.seed = 5;
    spec.trials = 6;
    spec.site_mask = siteBit(FaultSite::RegLaneValue);
    const CampaignReport rep = runCampaign(spec);
    EXPECT_EQ(rep.total.sdc, 0u);
    EXPECT_EQ(rep.total.hang, 0u);
    EXPECT_EQ(rep.total.trials, 6u);
    // Every lane flip on a live window should actually fire.
    EXPECT_GT(rep.total.fired, 0u);
}
