/** Fault-plan tests: seeded determinism, site masks, descriptions. */
#include <gtest/gtest.h>

#include "fault/plan.hpp"

using namespace diag;
using namespace diag::fault;

TEST(FaultPlan, SameSeedSamePlan)
{
    PlanSpec spec;
    spec.max_trigger = 5000;
    spec.clusters = 16;
    spec.events = 4;
    const FaultPlan a = FaultPlan::random(1234, spec);
    const FaultPlan b = FaultPlan::random(1234, spec);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].site, b.events[i].site);
        EXPECT_EQ(a.events[i].trigger, b.events[i].trigger);
        EXPECT_EQ(a.events[i].lane, b.events[i].lane);
        EXPECT_EQ(a.events[i].bit, b.events[i].bit);
        EXPECT_EQ(a.events[i].cluster, b.events[i].cluster);
        EXPECT_EQ(a.events[i].pe, b.events[i].pe);
        EXPECT_EQ(a.events[i].stuck_value, b.events[i].stuck_value);
        EXPECT_EQ(a.events[i].pick, b.events[i].pick);
    }
}

TEST(FaultPlan, DifferentSeedsDiverge)
{
    PlanSpec spec;
    spec.max_trigger = 1u << 20;
    spec.events = 1;
    // Across many seeds at least one field must differ somewhere;
    // identical streams would mean the seed is ignored.
    bool diverged = false;
    const FaultPlan base = FaultPlan::random(1, spec);
    for (u64 s = 2; s < 32 && !diverged; ++s) {
        const FaultPlan p = FaultPlan::random(s, spec);
        diverged = p.events[0].trigger != base.events[0].trigger ||
                   p.events[0].site != base.events[0].site ||
                   p.events[0].bit != base.events[0].bit;
    }
    EXPECT_TRUE(diverged);
}

TEST(FaultPlan, RespectsSiteMaskAndBounds)
{
    PlanSpec spec;
    spec.site_mask = siteBit(FaultSite::RegLaneValue);
    spec.max_trigger = 777;
    spec.clusters = 4;
    spec.pes_per_cluster = 8;
    spec.events = 1;
    for (u64 s = 0; s < 64; ++s) {
        const FaultPlan p = FaultPlan::random(s, spec);
        ASSERT_EQ(p.events.size(), 1u);
        const FaultEvent &ev = p.events[0];
        EXPECT_EQ(ev.site, FaultSite::RegLaneValue);
        EXPECT_LE(ev.trigger, spec.max_trigger);
        EXPECT_GE(ev.lane, 1);
        EXPECT_LT(ev.lane, 64);
        EXPECT_LT(ev.bit, 32);
        EXPECT_LT(ev.cluster, spec.clusters);
        EXPECT_LT(ev.pe, spec.pes_per_cluster);
    }
}

TEST(FaultPlan, ParseSiteMask)
{
    EXPECT_EQ(parseSiteMask("all"), kAllSites);
    EXPECT_EQ(parseSiteMask("lane"),
              siteBit(FaultSite::RegLaneValue));
    EXPECT_EQ(parseSiteMask("lane,pe"),
              siteBit(FaultSite::RegLaneValue) |
                  siteBit(FaultSite::PeResult));
    EXPECT_EQ(parseSiteMask("timing,stuck,memlane,memdata,cache"),
              siteBit(FaultSite::RegLaneTiming) |
                  siteBit(FaultSite::PeStuck) |
                  siteBit(FaultSite::MemLaneEntry) |
                  siteBit(FaultSite::MemData) |
                  siteBit(FaultSite::CacheTag));
    EXPECT_EQ(parseSiteMask("bogus"), 0u);
    EXPECT_EQ(parseSiteMask("lane,bogus"), 0u);
    EXPECT_EQ(parseSiteMask(""), 0u);
}

TEST(FaultPlan, SiteNamesRoundTrip)
{
    for (unsigned s = 0; s < static_cast<unsigned>(FaultSite::Count);
         ++s) {
        const char *name = siteName(static_cast<FaultSite>(s));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

TEST(FaultPlan, DescribeEventMentionsSite)
{
    FaultEvent ev;
    ev.site = FaultSite::PeStuck;
    ev.trigger = 42;
    ev.cluster = 3;
    ev.pe = 7;
    ev.stuck_value = 0xdeadbeef;
    const std::string d = describeEvent(ev);
    EXPECT_NE(d.find("stuck"), std::string::npos);
    EXPECT_NE(d.find("cl3/7"), std::string::npos);
    EXPECT_NE(d.find("42"), std::string::npos);
}
