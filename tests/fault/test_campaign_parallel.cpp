/** Host-parallel campaign tests: the trial cycle-budget fix (max, not
 *  min), byte-identical reports across --jobs, and per-trial seeding
 *  from (campaign seed, trial index) only. */
#include <gtest/gtest.h>

#include <algorithm>

#include "fault/campaign.hpp"

using namespace diag;
using namespace diag::fault;

namespace
{

CampaignSpec
stuckLudSpec()
{
    CampaignSpec spec;
    spec.workload = "lud";
    spec.seed = 7;
    spec.trials = 16;
    spec.site_mask = siteBit(FaultSite::PeStuck);
    return spec;
}

} // namespace

TEST(CampaignBudget, UserCeilingNeverShrinksTheBudget)
{
    // Regression for the serial-era min(): the default 2e9 user
    // ceiling used to *cap* the budget at the baseline-derived floor;
    // both bounds must act as floors.
    EXPECT_EQ(trialCycleBudget(2'000'000'000, 1000), 2'000'000'000u);
    EXPECT_EQ(trialCycleBudget(10'000, 50'000'000), 400'100'000u);
    EXPECT_EQ(trialCycleBudget(0, 0), 100'000u);
    // Never below either bound, whichever dominates.
    EXPECT_GE(trialCycleBudget(123, 456), 123u);
    EXPECT_GE(trialCycleBudget(123, 456), 456u * 8 + 100'000);
}

TEST(CampaignBudget, StrikeOutTrialBetweenTheBoundsStillCompletes)
{
    // A PE-stuck strike-out degrades the ring, so the trial finishes
    // *slower* than the fault-free baseline. Pin the user ceiling
    // between that trial's cycles and the baseline-derived floor: the
    // old min() would have truncated the budget at the ceiling and
    // misclassified the trial as a hang; max() lets it complete.
    const CampaignSpec spec = stuckLudSpec();
    const CampaignReport ref = runCampaign(spec);

    // Find the slowest completed trial that the generous floor covers.
    const u64 floor_budget =
        ref.baseline_cycles * 8 + 100'000;
    const TrialRecord *slow = nullptr;
    for (const TrialRecord &t : ref.trials) {
        if (t.outcome == Outcome::Hang || t.cycles >= floor_budget)
            continue;
        if (t.cycles > ref.baseline_cycles &&
            (!slow || t.cycles > slow->cycles))
            slow = &t;
    }
    ASSERT_NE(slow, nullptr)
        << "no stuck trial ran past the baseline; pick another seed";

    CampaignSpec pinned = spec;
    pinned.config.max_cycles =
        (ref.baseline_cycles + slow->cycles) / 2;
    ASSERT_GT(pinned.config.max_cycles, ref.baseline_cycles);
    ASSERT_LT(pinned.config.max_cycles, slow->cycles);

    const CampaignReport rep = runCampaign(pinned);
    const TrialRecord &again = rep.trials[slow->index];
    EXPECT_NE(again.outcome, Outcome::Hang);
    EXPECT_EQ(again.outcome, slow->outcome);
    EXPECT_EQ(again.cycles, slow->cycles);
    EXPECT_GT(again.cycles, pinned.config.max_cycles);
    EXPECT_LT(again.cycles, floor_budget);
    EXPECT_EQ(rep.total.hang, ref.total.hang);
}

TEST(CampaignParallel, JsonByteIdenticalAcrossJobs)
{
    CampaignSpec spec;
    spec.workload = "lud";
    spec.seed = 3;
    spec.trials = 12;
    spec.site_mask = siteBit(FaultSite::RegLaneValue) |
                     siteBit(FaultSite::PeResult) |
                     siteBit(FaultSite::PeStuck);
    spec.jobs = 1;
    const std::string serial = runCampaign(spec).renderJson();
    for (unsigned jobs : {4u, 16u}) {
        spec.jobs = jobs;
        EXPECT_EQ(runCampaign(spec).renderJson(), serial)
            << "jobs=" << jobs;
    }
}

TEST(CampaignParallel, TrialSeedsDependOnlyOnCampaignSeedAndIndex)
{
    // Satellite (c): identical plans for jobs=1 and jobs=8. Would
    // fail if per-trial randomness came from any shared RNG whose
    // draw order depends on worker scheduling.
    CampaignSpec spec = stuckLudSpec();
    spec.site_mask = kAllSites;
    spec.trials = 10;
    spec.jobs = 1;
    const CampaignReport a = runCampaign(spec);
    spec.jobs = 8;
    const CampaignReport b = runCampaign(spec);
    ASSERT_EQ(a.trials.size(), b.trials.size());
    for (size_t i = 0; i < a.trials.size(); ++i) {
        EXPECT_EQ(a.trials[i].seed, b.trials[i].seed) << "trial " << i;
        EXPECT_EQ(a.trials[i].planned, b.trials[i].planned)
            << "trial " << i;
        EXPECT_EQ(a.trials[i].site, b.trials[i].site) << "trial " << i;
    }
}
