/** Disassembler smoke tests. */
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"

using namespace diag;
using namespace diag::isa;

TEST(Disasm, RegNames)
{
    EXPECT_EQ(regName(0), "x0");
    EXPECT_EQ(regName(31), "x31");
    EXPECT_EQ(regName(fpReg(0)), "f0");
    EXPECT_EQ(regName(fpReg(31)), "f31");
    EXPECT_EQ(regName(kNoReg), "-");
}

TEST(Disasm, CommonForms)
{
    EXPECT_EQ(disassemble(decode(enc::rType(0x33, 1, 0, 2, 3, 0))),
              "add x1, x2, x3");
    EXPECT_EQ(disassemble(decode(enc::iType(0x13, 1, 0, 2, -5))),
              "addi x1, x2, -5");
    EXPECT_EQ(disassemble(decode(enc::iType(0x03, 1, 2, 2, 16))),
              "lw x1, 16(x2)");
    EXPECT_EQ(disassemble(decode(enc::sType(0x23, 2, 2, 1, -8))),
              "sw x1, -8(x2)");
}

TEST(Disasm, ControlFlowResolvesTargets)
{
    EXPECT_EQ(disassemble(decode(enc::bType(0x63, 1, 1, 2, 16)), 0x100),
              "bne x1, x2, 0x110");
    EXPECT_EQ(disassemble(decode(enc::jType(0x6f, 1, -16)), 0x100),
              "jal x1, 0xf0");
}

TEST(Disasm, FpAndSimtForms)
{
    EXPECT_EQ(disassemble(decode(enc::rType(0x53, 1, 7, 2, 3, 0))),
              "fadd.s f1, f2, f3");
    EXPECT_EQ(disassemble(decode(enc::simtS(10, 11, 12, 2))),
              "simt_s x10, x11, x12, 2");
    EXPECT_EQ(disassemble(decode(enc::simtE(10, 12, 0x40)), 0x1040),
              "simt_e x10, x12, 0x1000");
}

TEST(Disasm, InvalidAndSystem)
{
    EXPECT_EQ(disassemble(decode(0)), "invalid");
    EXPECT_EQ(disassemble(decode(0x00100073)), "ebreak");
}
