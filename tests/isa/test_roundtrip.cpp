/** Property test: for random valid instructions, the pipeline
 *  encode -> decode -> disassemble -> re-assemble -> re-encode must be
 *  the identity. This cross-validates the encoder, decoder,
 *  disassembler, and assembler against each other. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/rng.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"
#include "isa/encoder.hpp"

using namespace diag;
using namespace diag::isa;

namespace
{

/** Assemble a single instruction line at @p pc and return its word. */
u32
reassemble(const std::string &text, Addr pc)
{
    char org[32];
    std::snprintf(org, sizeof(org), ".org 0x%x\n", pc);
    const Program p = assembler::assemble(org + text + "\n");
    return p.word(pc);
}

void
expectRoundTrip(u32 word, Addr pc = 0x1000)
{
    const DecodedInst di = decode(word);
    ASSERT_TRUE(di.valid()) << "word " << std::hex << word;
    const std::string text = disassemble(di, pc);
    const u32 again = reassemble(text, pc);
    EXPECT_EQ(again, word)
        << "disassembly '" << text << "' did not round-trip";
}

} // namespace

TEST(RoundTrip, RandomRTypeIntOps)
{
    Rng rng(0x11);
    const u32 f3f7[][2] = {{0, 0x00}, {0, 0x20}, {1, 0}, {2, 0},
                           {3, 0},    {4, 0},    {5, 0}, {5, 0x20},
                           {6, 0},    {7, 0},    {0, 1}, {1, 1},
                           {2, 1},    {3, 1},    {4, 1}, {5, 1},
                           {6, 1},    {7, 1}};
    for (int i = 0; i < 200; ++i) {
        const auto &sel = f3f7[rng.below(18)];
        expectRoundTrip(enc::rType(
            0x33, 1 + static_cast<u32>(rng.below(31)),
            sel[0], static_cast<u32>(rng.below(32)),
            static_cast<u32>(rng.below(32)), sel[1]));
    }
}

TEST(RoundTrip, RandomImmediateOps)
{
    Rng rng(0x22);
    const u32 f3s[] = {0, 2, 3, 4, 6, 7};
    for (int i = 0; i < 200; ++i) {
        expectRoundTrip(enc::iType(
            0x13, 1 + static_cast<u32>(rng.below(31)),
            f3s[rng.below(6)], static_cast<u32>(rng.below(32)),
            static_cast<i32>(rng.range(-2048, 2047))));
    }
}

TEST(RoundTrip, RandomLoadsStores)
{
    Rng rng(0x33);
    const u32 ld_f3[] = {0, 1, 2, 4, 5};
    const u32 st_f3[] = {0, 1, 2};
    for (int i = 0; i < 100; ++i) {
        expectRoundTrip(enc::iType(
            0x03, 1 + static_cast<u32>(rng.below(31)),
            ld_f3[rng.below(5)], static_cast<u32>(rng.below(32)),
            static_cast<i32>(rng.range(-2048, 2047))));
        expectRoundTrip(enc::sType(
            0x23, st_f3[rng.below(3)],
            static_cast<u32>(rng.below(32)),
            static_cast<u32>(rng.below(32)),
            static_cast<i32>(rng.range(-2048, 2047))));
    }
}

TEST(RoundTrip, RandomBranchesAndJumps)
{
    Rng rng(0x44);
    const u32 br_f3[] = {0, 1, 4, 5, 6, 7};
    for (int i = 0; i < 100; ++i) {
        const Addr pc = 0x10000;
        expectRoundTrip(
            enc::bType(0x63, br_f3[rng.below(6)],
                       static_cast<u32>(rng.below(32)),
                       static_cast<u32>(rng.below(32)),
                       static_cast<i32>(rng.range(-2048, 2047)) * 2),
            pc);
        expectRoundTrip(
            enc::jType(0x6f, 1 + static_cast<u32>(rng.below(31)),
                       static_cast<i32>(rng.range(-30000, 30000)) * 2),
            pc + 0x40000);
    }
}

TEST(RoundTrip, FpOps)
{
    Rng rng(0x55);
    const u32 rr_f3f7[][2] = {{7, 0x00}, {7, 0x04}, {7, 0x08},
                              {7, 0x0c}, {0, 0x10}, {1, 0x10},
                              {2, 0x10}, {0, 0x14}, {1, 0x14}};
    for (int i = 0; i < 100; ++i) {
        const auto &sel = rr_f3f7[rng.below(9)];
        expectRoundTrip(enc::rType(
            0x53, static_cast<u32>(rng.below(32)), sel[0],
            static_cast<u32>(rng.below(32)),
            static_cast<u32>(rng.below(32)), sel[1]));
    }
    // Compares, conversions, moves, classify.
    expectRoundTrip(enc::rType(0x53, 5, 0, 2, 3, 0x50));
    expectRoundTrip(enc::rType(0x53, 5, 1, 2, 3, 0x50));
    expectRoundTrip(enc::rType(0x53, 5, 2, 2, 3, 0x50));
    expectRoundTrip(enc::rType(0x53, 5, 1, 2, 0, 0x60));
    expectRoundTrip(enc::rType(0x53, 5, 1, 2, 1, 0x60));
    expectRoundTrip(enc::rType(0x53, 5, 7, 2, 0, 0x68));
    expectRoundTrip(enc::rType(0x53, 5, 7, 2, 1, 0x68));
    expectRoundTrip(enc::rType(0x53, 5, 0, 2, 0, 0x70));
    expectRoundTrip(enc::rType(0x53, 5, 1, 2, 0, 0x70));
    expectRoundTrip(enc::rType(0x53, 5, 0, 2, 0, 0x78));
    expectRoundTrip(enc::rType(0x53, 5, 7, 2, 0, 0x2c));
}

TEST(RoundTrip, FmaFamily)
{
    Rng rng(0x66);
    const u32 opcs[] = {0x43, 0x47, 0x4b, 0x4f};
    for (int i = 0; i < 50; ++i) {
        expectRoundTrip(enc::r4Type(
            opcs[rng.below(4)], static_cast<u32>(rng.below(32)), 0,
            static_cast<u32>(rng.below(32)),
            static_cast<u32>(rng.below(32)), 0,
            static_cast<u32>(rng.below(32))));
    }
}

TEST(RoundTrip, SimtExtensions)
{
    expectRoundTrip(enc::simtS(10, 11, 12, 3));
    // simt_e needs its simt_s in front for the assembler's
    // label-distance computation; build a two-instruction program.
    const Program p = assembler::assemble(R"(
        .org 0x1000
        head: simt_s a0, a1, a2, 1
        simt_e a0, a2, head
    )");
    const u32 word = p.word(0x1004);
    const DecodedInst di = decode(word);
    const std::string text = disassemble(di, 0x1004);
    EXPECT_EQ(text, "simt_e x10, x12, 0x1000");
}

TEST(RoundTrip, SystemOps)
{
    expectRoundTrip(0x00000073);  // ecall
    expectRoundTrip(0x00100073);  // ebreak
    expectRoundTrip(0x0000000f);  // fence
}
