/** Unit tests for the shared execution semantics, including the RISC-V
 *  M-extension corner cases and F-extension NaN/rounding rules. */
#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"
#include "isa/exec.hpp"

using namespace diag;
using namespace diag::isa;

namespace
{

/** Decode a freshly encoded word (all tests build insts this way). */
DecodedInst
inst(u32 raw)
{
    return decode(raw);
}

u32 f2u(float f) { return std::bit_cast<u32>(f); }
float u2f(u32 u) { return std::bit_cast<float>(u); }

} // namespace

TEST(Exec, IntegerAluBasics)
{
    const DecodedInst add = inst(enc::rType(0x33, 1, 0, 2, 3, 0));
    EXPECT_EQ(execute(add, 0, 7, 8).value, 15u);
    EXPECT_EQ(execute(add, 0, 0xffffffffu, 1).value, 0u);  // wraparound

    const DecodedInst sub = inst(enc::rType(0x33, 1, 0, 2, 3, 0x20));
    EXPECT_EQ(execute(sub, 0, 3, 5).value, 0xfffffffeu);

    const DecodedInst slt = inst(enc::rType(0x33, 1, 2, 2, 3, 0));
    EXPECT_EQ(execute(slt, 0, 0xffffffffu, 0).value, 1u);  // -1 < 0
    const DecodedInst sltu = inst(enc::rType(0x33, 1, 3, 2, 3, 0));
    EXPECT_EQ(execute(sltu, 0, 0xffffffffu, 0).value, 0u);
}

TEST(Exec, ShiftsUseLowFiveBits)
{
    const DecodedInst sll = inst(enc::rType(0x33, 1, 1, 2, 3, 0));
    EXPECT_EQ(execute(sll, 0, 1, 33).value, 2u);
    const DecodedInst sra = inst(enc::rType(0x33, 1, 5, 2, 3, 0x20));
    EXPECT_EQ(execute(sra, 0, 0x80000000u, 31).value, 0xffffffffu);
    const DecodedInst srl = inst(enc::rType(0x33, 1, 5, 2, 3, 0));
    EXPECT_EQ(execute(srl, 0, 0x80000000u, 31).value, 1u);
}

TEST(Exec, BranchesCompareCorrectly)
{
    const DecodedInst blt = inst(enc::bType(0x63, 4, 1, 2, 8));
    EXPECT_TRUE(execute(blt, 0x100, 0xffffffffu, 0).redirect);
    EXPECT_EQ(execute(blt, 0x100, 0xffffffffu, 0).target, 0x108u);
    const DecodedInst bgeu = inst(enc::bType(0x63, 7, 1, 2, -8));
    EXPECT_TRUE(execute(bgeu, 0x100, 0xffffffffu, 0).redirect);
    EXPECT_EQ(execute(bgeu, 0x100, 0xffffffffu, 0).target, 0xf8u);
    const DecodedInst beq = inst(enc::bType(0x63, 0, 1, 2, 16));
    EXPECT_FALSE(execute(beq, 0, 1, 2).redirect);
}

TEST(Exec, JumpLinksPcPlus4)
{
    const DecodedInst jal = inst(enc::jType(0x6f, 1, 0x800));
    const ExecOut out = execute(jal, 0x1000, 0, 0);
    EXPECT_EQ(out.value, 0x1004u);
    EXPECT_TRUE(out.redirect);
    EXPECT_EQ(out.target, 0x1800u);

    const DecodedInst jalr = inst(enc::iType(0x67, 1, 0, 2, 3));
    const ExecOut jout = execute(jalr, 0x1000, 0x2001, 0);
    EXPECT_EQ(jout.target, 0x2004u);  // low bit cleared
}

TEST(Exec, MulHighVariants)
{
    const DecodedInst mulh = inst(enc::rType(0x33, 1, 1, 2, 3, 1));
    EXPECT_EQ(execute(mulh, 0, 0x80000000u, 0x80000000u).value,
              0x40000000u);
    const DecodedInst mulhu = inst(enc::rType(0x33, 1, 3, 2, 3, 1));
    EXPECT_EQ(execute(mulhu, 0, 0xffffffffu, 0xffffffffu).value,
              0xfffffffeu);
    const DecodedInst mulhsu = inst(enc::rType(0x33, 1, 2, 2, 3, 1));
    // -1 * 0xffffffff (unsigned) = -0xffffffff; high word 0xffffffff.
    EXPECT_EQ(execute(mulhsu, 0, 0xffffffffu, 0xffffffffu).value,
              0xffffffffu);
}

TEST(Exec, DivisionCornerCases)
{
    const DecodedInst div = inst(enc::rType(0x33, 1, 4, 2, 3, 1));
    const DecodedInst divu = inst(enc::rType(0x33, 1, 5, 2, 3, 1));
    const DecodedInst rem = inst(enc::rType(0x33, 1, 6, 2, 3, 1));
    const DecodedInst remu = inst(enc::rType(0x33, 1, 7, 2, 3, 1));
    // Division by zero (RISC-V defined results, no trap).
    EXPECT_EQ(execute(div, 0, 42, 0).value, 0xffffffffu);
    EXPECT_EQ(execute(divu, 0, 42, 0).value, 0xffffffffu);
    EXPECT_EQ(execute(rem, 0, 42, 0).value, 42u);
    EXPECT_EQ(execute(remu, 0, 42, 0).value, 42u);
    // Signed overflow INT_MIN / -1.
    EXPECT_EQ(execute(div, 0, 0x80000000u, 0xffffffffu).value,
              0x80000000u);
    EXPECT_EQ(execute(rem, 0, 0x80000000u, 0xffffffffu).value, 0u);
    // Ordinary signed division truncates toward zero.
    EXPECT_EQ(execute(div, 0, static_cast<u32>(-7), 2).value,
              static_cast<u32>(-3));
    EXPECT_EQ(execute(rem, 0, static_cast<u32>(-7), 2).value,
              static_cast<u32>(-1));
}

TEST(Exec, FpArithmeticAndNanCanonicalization)
{
    const DecodedInst fadd = inst(enc::rType(0x53, 1, 7, 2, 3, 0x00));
    EXPECT_EQ(u2f(execute(fadd, 0, f2u(1.5f), f2u(2.25f)).value), 3.75f);
    // inf + -inf = canonical NaN
    const u32 inf = 0x7f800000u;
    const u32 ninf = 0xff800000u;
    EXPECT_EQ(execute(fadd, 0, inf, ninf).value, kCanonicalNan);

    const DecodedInst fdiv = inst(enc::rType(0x53, 1, 7, 2, 3, 0x0c));
    EXPECT_EQ(execute(fdiv, 0, f2u(1.0f), f2u(0.0f)).value, inf);
    EXPECT_EQ(execute(fdiv, 0, f2u(0.0f), f2u(0.0f)).value,
              kCanonicalNan);

    const DecodedInst fsqrt = inst(enc::rType(0x53, 1, 7, 2, 0, 0x2c));
    EXPECT_EQ(u2f(execute(fsqrt, 0, f2u(9.0f), 0).value), 3.0f);
    EXPECT_EQ(execute(fsqrt, 0, f2u(-1.0f), 0).value, kCanonicalNan);
}

TEST(Exec, FpMinMaxZeroAndNanRules)
{
    const DecodedInst fmin = inst(enc::rType(0x53, 1, 0, 2, 3, 0x14));
    const DecodedInst fmax = inst(enc::rType(0x53, 1, 1, 2, 3, 0x14));
    const u32 pz = f2u(0.0f);
    const u32 nz = f2u(-0.0f);
    EXPECT_EQ(execute(fmin, 0, pz, nz).value, nz);   // -0 < +0
    EXPECT_EQ(execute(fmax, 0, pz, nz).value, pz);
    // One NaN: return the other operand.
    EXPECT_EQ(execute(fmin, 0, kCanonicalNan, f2u(5.0f)).value,
              f2u(5.0f));
    EXPECT_EQ(execute(fmax, 0, f2u(5.0f), kCanonicalNan).value,
              f2u(5.0f));
    // Both NaN: canonical NaN.
    EXPECT_EQ(execute(fmin, 0, kCanonicalNan, kCanonicalNan).value,
              kCanonicalNan);
}

TEST(Exec, FpConvertSaturates)
{
    const DecodedInst w = inst(enc::rType(0x53, 1, 1, 2, 0, 0x60));
    const DecodedInst wu = inst(enc::rType(0x53, 1, 1, 2, 1, 0x60));
    EXPECT_EQ(execute(w, 0, f2u(3.7f), 0).value, 3u);      // truncate
    EXPECT_EQ(execute(w, 0, f2u(-3.7f), 0).value,
              static_cast<u32>(-3));
    EXPECT_EQ(execute(w, 0, f2u(3e9f), 0).value, 0x7fffffffu);
    EXPECT_EQ(execute(w, 0, f2u(-3e9f), 0).value, 0x80000000u);
    EXPECT_EQ(execute(w, 0, kCanonicalNan, 0).value, 0x7fffffffu);
    EXPECT_EQ(execute(wu, 0, f2u(-1.0f), 0).value, 0u);
    EXPECT_EQ(execute(wu, 0, f2u(5e9f), 0).value, 0xffffffffu);
    EXPECT_EQ(execute(wu, 0, kCanonicalNan, 0).value, 0xffffffffu);

    const DecodedInst sw = inst(enc::rType(0x53, 1, 7, 2, 0, 0x68));
    EXPECT_EQ(u2f(execute(sw, 0, static_cast<u32>(-2), 0).value), -2.0f);
    const DecodedInst swu = inst(enc::rType(0x53, 1, 7, 2, 1, 0x68));
    EXPECT_EQ(u2f(execute(swu, 0, 0xffffffffu, 0).value),
              4294967296.0f);
}

TEST(Exec, FpCompares)
{
    const DecodedInst feq = inst(enc::rType(0x53, 1, 2, 2, 3, 0x50));
    const DecodedInst flt = inst(enc::rType(0x53, 1, 1, 2, 3, 0x50));
    const DecodedInst fle = inst(enc::rType(0x53, 1, 0, 2, 3, 0x50));
    EXPECT_EQ(execute(feq, 0, f2u(1.0f), f2u(1.0f)).value, 1u);
    EXPECT_EQ(execute(feq, 0, kCanonicalNan, kCanonicalNan).value, 0u);
    EXPECT_EQ(execute(flt, 0, f2u(-1.0f), f2u(1.0f)).value, 1u);
    EXPECT_EQ(execute(fle, 0, f2u(1.0f), f2u(1.0f)).value, 1u);
    EXPECT_EQ(execute(fle, 0, kCanonicalNan, f2u(1.0f)).value, 0u);
    // +0 == -0 per IEEE.
    EXPECT_EQ(execute(feq, 0, f2u(0.0f), f2u(-0.0f)).value, 1u);
}

TEST(Exec, FpSignInjection)
{
    const DecodedInst fsgnj = inst(enc::rType(0x53, 1, 0, 2, 3, 0x10));
    const DecodedInst fsgnjn = inst(enc::rType(0x53, 1, 1, 2, 3, 0x10));
    const DecodedInst fsgnjx = inst(enc::rType(0x53, 1, 2, 2, 3, 0x10));
    EXPECT_EQ(u2f(execute(fsgnj, 0, f2u(2.0f), f2u(-1.0f)).value),
              -2.0f);
    EXPECT_EQ(u2f(execute(fsgnjn, 0, f2u(2.0f), f2u(-1.0f)).value),
              2.0f);
    EXPECT_EQ(u2f(execute(fsgnjx, 0, f2u(-2.0f), f2u(-1.0f)).value),
              2.0f);
}

TEST(Exec, FpClassify)
{
    const DecodedInst fc = inst(enc::rType(0x53, 1, 1, 2, 0, 0x70));
    EXPECT_EQ(execute(fc, 0, 0xff800000u, 0).value, 1u << 0);  // -inf
    EXPECT_EQ(execute(fc, 0, f2u(-1.0f), 0).value, 1u << 1);
    EXPECT_EQ(execute(fc, 0, 0x80000001u, 0).value, 1u << 2);  // -subn
    EXPECT_EQ(execute(fc, 0, f2u(-0.0f), 0).value, 1u << 3);
    EXPECT_EQ(execute(fc, 0, f2u(0.0f), 0).value, 1u << 4);
    EXPECT_EQ(execute(fc, 0, 0x00000001u, 0).value, 1u << 5);  // +subn
    EXPECT_EQ(execute(fc, 0, f2u(1.0f), 0).value, 1u << 6);
    EXPECT_EQ(execute(fc, 0, 0x7f800000u, 0).value, 1u << 7);  // +inf
    EXPECT_EQ(execute(fc, 0, 0x7f800001u, 0).value, 1u << 8);  // sNaN
    EXPECT_EQ(execute(fc, 0, kCanonicalNan, 0).value, 1u << 9);
}

TEST(Exec, FmaFamily)
{
    const DecodedInst fmadd = inst(enc::r4Type(0x43, 1, 0, 2, 3, 0, 4));
    const DecodedInst fmsub = inst(enc::r4Type(0x47, 1, 0, 2, 3, 0, 4));
    const DecodedInst fnmsub = inst(enc::r4Type(0x4b, 1, 0, 2, 3, 0, 4));
    const DecodedInst fnmadd = inst(enc::r4Type(0x4f, 1, 0, 2, 3, 0, 4));
    const u32 a = f2u(2.0f);
    const u32 b = f2u(3.0f);
    const u32 c = f2u(1.0f);
    EXPECT_EQ(u2f(execute(fmadd, 0, a, b, c).value), 7.0f);
    EXPECT_EQ(u2f(execute(fmsub, 0, a, b, c).value), 5.0f);
    EXPECT_EQ(u2f(execute(fnmsub, 0, a, b, c).value), -5.0f);
    EXPECT_EQ(u2f(execute(fnmadd, 0, a, b, c).value), -7.0f);
}

TEST(Exec, LoadExtendVariants)
{
    const DecodedInst lb = inst(enc::iType(0x03, 1, 0, 2, 0));
    const DecodedInst lbu = inst(enc::iType(0x03, 1, 4, 2, 0));
    const DecodedInst lh = inst(enc::iType(0x03, 1, 1, 2, 0));
    const DecodedInst lhu = inst(enc::iType(0x03, 1, 5, 2, 0));
    const DecodedInst lw = inst(enc::iType(0x03, 1, 2, 2, 0));
    EXPECT_EQ(loadExtend(lb, 0x80), 0xffffff80u);
    EXPECT_EQ(loadExtend(lbu, 0x80), 0x80u);
    EXPECT_EQ(loadExtend(lh, 0x8000), 0xffff8000u);
    EXPECT_EQ(loadExtend(lhu, 0x8000), 0x8000u);
    EXPECT_EQ(loadExtend(lw, 0xdeadbeefu), 0xdeadbeefu);
}

TEST(Exec, EffectiveAddress)
{
    const DecodedInst lw = inst(enc::iType(0x03, 1, 2, 2, -4));
    EXPECT_EQ(effectiveAddr(lw, 0x1000), 0xffcu);
}

TEST(Exec, HaltingInstructions)
{
    EXPECT_TRUE(execute(decode(0x00100073), 0, 0, 0).halt);  // ebreak
    EXPECT_TRUE(execute(decode(0x00000073), 0, 0, 0).halt);  // ecall
    EXPECT_FALSE(execute(decode(0x0000000f), 0, 0, 0).halt); // fence
}

TEST(Exec, SimtEndLoopsUntilBound)
{
    // simt_e with rc=x10, r_end=x12, l_offset=64; step passed as c.
    const DecodedInst se = decode(enc::simtE(10, 12, 64));
    // a = end value, b = rc, c = step
    ExecOut out = execute(se, 0x1040, /*end*/ 10, /*rc*/ 5, /*step*/ 1);
    EXPECT_EQ(out.value, 6u);
    EXPECT_TRUE(out.redirect);
    EXPECT_EQ(out.target, 0x1040u - 64u + 4u);
    out = execute(se, 0x1040, 10, 9, 1);
    EXPECT_EQ(out.value, 10u);
    EXPECT_FALSE(out.redirect);  // rc reached the bound
}
