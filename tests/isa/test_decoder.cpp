/** Decoder unit tests: encode with the raw-format helpers, decode, and
 *  check every field round-trips. */
#include <gtest/gtest.h>

#include "isa/decoder.hpp"
#include "isa/encoder.hpp"

using namespace diag;
using namespace diag::isa;

TEST(Decoder, AddiFields)
{
    const DecodedInst di = decode(enc::iType(0x13, 5, 0, 6, -42));
    EXPECT_EQ(di.op, Op::ADDI);
    EXPECT_EQ(di.rd, 5);
    EXPECT_EQ(di.rs1, 6);
    EXPECT_EQ(di.rs2, kNoReg);
    EXPECT_EQ(di.imm, -42);
    EXPECT_EQ(di.cls(), ExecClass::IntAlu);
}

TEST(Decoder, WritesToX0AreDropped)
{
    const DecodedInst di = decode(enc::iType(0x13, 0, 0, 6, 1));
    EXPECT_EQ(di.op, Op::ADDI);
    EXPECT_EQ(di.rd, kNoReg);
    EXPECT_FALSE(di.writesReg());
}

TEST(Decoder, RTypeIntOps)
{
    struct Case { u32 f3, f7; Op op; };
    const Case cases[] = {
        {0, 0x00, Op::ADD},  {0, 0x20, Op::SUB},  {1, 0x00, Op::SLL},
        {2, 0x00, Op::SLT},  {3, 0x00, Op::SLTU}, {4, 0x00, Op::XOR},
        {5, 0x00, Op::SRL},  {5, 0x20, Op::SRA},  {6, 0x00, Op::OR},
        {7, 0x00, Op::AND},
    };
    for (const auto &c : cases) {
        const DecodedInst di = decode(enc::rType(0x33, 1, c.f3, 2, 3,
                                                 c.f7));
        EXPECT_EQ(di.op, c.op) << "f3=" << c.f3 << " f7=" << c.f7;
        EXPECT_EQ(di.rd, 1);
        EXPECT_EQ(di.rs1, 2);
        EXPECT_EQ(di.rs2, 3);
    }
}

TEST(Decoder, MExtension)
{
    const Op ops[8] = {Op::MUL, Op::MULH, Op::MULHSU, Op::MULHU,
                       Op::DIV, Op::DIVU, Op::REM, Op::REMU};
    for (u32 f3 = 0; f3 < 8; ++f3) {
        const DecodedInst di = decode(enc::rType(0x33, 4, f3, 5, 6,
                                                 0x01));
        EXPECT_EQ(di.op, ops[f3]);
    }
    EXPECT_EQ(decode(enc::rType(0x33, 1, 0, 2, 3, 0x01)).cls(),
              ExecClass::IntMul);
    EXPECT_EQ(decode(enc::rType(0x33, 1, 4, 2, 3, 0x01)).cls(),
              ExecClass::IntDiv);
}

TEST(Decoder, Shifts)
{
    DecodedInst di = decode(enc::rType(0x13, 1, 1, 2, 7, 0x00));
    EXPECT_EQ(di.op, Op::SLLI);
    EXPECT_EQ(di.imm, 7);
    di = decode(enc::rType(0x13, 1, 5, 2, 31, 0x20));
    EXPECT_EQ(di.op, Op::SRAI);
    EXPECT_EQ(di.imm, 31);
}

TEST(Decoder, BranchOffsets)
{
    for (const i32 off : {-4096, -2048, -2, 2, 64, 4094}) {
        const DecodedInst di = decode(enc::bType(0x63, 1, 3, 4, off));
        EXPECT_EQ(di.op, Op::BNE);
        EXPECT_EQ(di.imm, off) << "offset " << off;
        EXPECT_EQ(di.rs1, 3);
        EXPECT_EQ(di.rs2, 4);
    }
}

TEST(Decoder, JalOffsets)
{
    for (const i32 off : {-(1 << 20), -2, 2, 1024, (1 << 20) - 2}) {
        const DecodedInst di = decode(enc::jType(0x6f, 1, off));
        EXPECT_EQ(di.op, Op::JAL);
        EXPECT_EQ(di.imm, off) << "offset " << off;
    }
}

TEST(Decoder, LoadsAndStores)
{
    DecodedInst di = decode(enc::iType(0x03, 8, 2, 9, 100));
    EXPECT_EQ(di.op, Op::LW);
    EXPECT_TRUE(di.isLoad());
    EXPECT_EQ(di.info().memBytes, 4);
    di = decode(enc::iType(0x03, 8, 0, 9, -1));
    EXPECT_EQ(di.op, Op::LB);
    EXPECT_TRUE(di.info().memSigned);
    di = decode(enc::iType(0x03, 8, 4, 9, -1));
    EXPECT_EQ(di.op, Op::LBU);
    EXPECT_FALSE(di.info().memSigned);
    di = decode(enc::sType(0x23, 2, 9, 8, -4));
    EXPECT_EQ(di.op, Op::SW);
    EXPECT_TRUE(di.isStore());
    EXPECT_EQ(di.rs1, 9);
    EXPECT_EQ(di.rs2, 8);
    EXPECT_EQ(di.imm, -4);
}

TEST(Decoder, FpLoadsUseFpDest)
{
    const DecodedInst di = decode(enc::iType(0x07, 3, 2, 9, 8));
    EXPECT_EQ(di.op, Op::FLW);
    EXPECT_EQ(di.rd, fpReg(3));
    EXPECT_EQ(di.rs1, 9);  // base is an integer register
    EXPECT_TRUE(di.info().fpDest);
}

TEST(Decoder, FpArithmetic)
{
    DecodedInst di = decode(enc::rType(0x53, 1, 7, 2, 3, 0x00));
    EXPECT_EQ(di.op, Op::FADD_S);
    EXPECT_EQ(di.rd, fpReg(1));
    EXPECT_EQ(di.rs1, fpReg(2));
    EXPECT_EQ(di.rs2, fpReg(3));
    di = decode(enc::rType(0x53, 1, 7, 2, 0, 0x2c));
    EXPECT_EQ(di.op, Op::FSQRT_S);
    EXPECT_EQ(di.rs2, kNoReg);
}

TEST(Decoder, FpCompareWritesIntReg)
{
    const DecodedInst di = decode(enc::rType(0x53, 7, 1, 2, 3, 0x50));
    EXPECT_EQ(di.op, Op::FLT_S);
    EXPECT_EQ(di.rd, 7);
    EXPECT_EQ(di.rs1, fpReg(2));
    EXPECT_EQ(di.rs2, fpReg(3));
}

TEST(Decoder, FpConversions)
{
    DecodedInst di = decode(enc::rType(0x53, 7, 1, 2, 0, 0x60));
    EXPECT_EQ(di.op, Op::FCVT_W_S);
    EXPECT_EQ(di.rd, 7);
    EXPECT_EQ(di.rs1, fpReg(2));
    di = decode(enc::rType(0x53, 7, 7, 2, 1, 0x68));
    EXPECT_EQ(di.op, Op::FCVT_S_WU);
    EXPECT_EQ(di.rd, fpReg(7));
    EXPECT_EQ(di.rs1, 2);
}

TEST(Decoder, FmaFamily)
{
    const DecodedInst di = decode(enc::r4Type(0x43, 1, 0, 2, 3, 0, 4));
    EXPECT_EQ(di.op, Op::FMADD_S);
    EXPECT_EQ(di.rd, fpReg(1));
    EXPECT_EQ(di.rs1, fpReg(2));
    EXPECT_EQ(di.rs2, fpReg(3));
    EXPECT_EQ(di.rs3, fpReg(4));
    EXPECT_EQ(di.cls(), ExecClass::FpFma);
}

TEST(Decoder, System)
{
    EXPECT_EQ(decode(0x00000073).op, Op::ECALL);
    EXPECT_EQ(decode(0x00100073).op, Op::EBREAK);
    EXPECT_EQ(decode(0x0000000f).op, Op::FENCE);
}

TEST(Decoder, SimtStart)
{
    const DecodedInst di = decode(enc::simtS(10, 11, 12, 3));
    EXPECT_EQ(di.op, Op::SIMT_S);
    const auto f = simtStartFields(di);
    EXPECT_EQ(f.rc, 10);
    EXPECT_EQ(f.rStep, 11);
    EXPECT_EQ(f.rEnd, 12);
    EXPECT_EQ(f.interval, 3u);
    EXPECT_FALSE(di.writesReg());
}

TEST(Decoder, SimtEnd)
{
    const DecodedInst di = decode(enc::simtE(10, 12, 64));
    EXPECT_EQ(di.op, Op::SIMT_E);
    const auto f = simtEndFields(di);
    EXPECT_EQ(f.rc, 10);
    EXPECT_EQ(f.rEnd, 12);
    EXPECT_EQ(f.lOffset, 64u);
    EXPECT_EQ(di.rd, 10);
    EXPECT_EQ(di.rs1, 12);
    EXPECT_EQ(di.rs2, 10);
    EXPECT_TRUE(di.isControl());
}

TEST(Decoder, InvalidEncodings)
{
    EXPECT_EQ(decode(0x00000000).op, Op::INVALID);
    EXPECT_EQ(decode(0xffffffff).op, Op::INVALID);
    // OP with a bogus funct7
    EXPECT_EQ(decode(enc::rType(0x33, 1, 0, 2, 3, 0x11)).op, Op::INVALID);
}

TEST(Decoder, LuiAuipc)
{
    DecodedInst di = decode(enc::uType(0x37, 5, 0x12345000));
    EXPECT_EQ(di.op, Op::LUI);
    EXPECT_EQ(di.imm, 0x12345000);
    di = decode(enc::uType(0x17, 5, static_cast<i32>(0xfffff000)));
    EXPECT_EQ(di.op, Op::AUIPC);
    EXPECT_EQ(static_cast<u32>(di.imm), 0xfffff000u);
}
