/** ABI register-name mapping tests. */
#include <gtest/gtest.h>

#include "asm/regnames.hpp"

using namespace diag::assembler;

TEST(RegNames, Architectural)
{
    EXPECT_EQ(parseIntReg("x0"), 0);
    EXPECT_EQ(parseIntReg("x31"), 31);
    EXPECT_EQ(parseIntReg("x32"), -1);
    EXPECT_EQ(parseIntReg("x"), -1);
    EXPECT_EQ(parseFpReg("f0"), 0);
    EXPECT_EQ(parseFpReg("f31"), 31);
    EXPECT_EQ(parseFpReg("f32"), -1);
}

TEST(RegNames, IntegerAbi)
{
    EXPECT_EQ(parseIntReg("zero"), 0);
    EXPECT_EQ(parseIntReg("ra"), 1);
    EXPECT_EQ(parseIntReg("sp"), 2);
    EXPECT_EQ(parseIntReg("gp"), 3);
    EXPECT_EQ(parseIntReg("tp"), 4);
    EXPECT_EQ(parseIntReg("t0"), 5);
    EXPECT_EQ(parseIntReg("t2"), 7);
    EXPECT_EQ(parseIntReg("t3"), 28);
    EXPECT_EQ(parseIntReg("t6"), 31);
    EXPECT_EQ(parseIntReg("s0"), 8);
    EXPECT_EQ(parseIntReg("fp"), 8);
    EXPECT_EQ(parseIntReg("s1"), 9);
    EXPECT_EQ(parseIntReg("s2"), 18);
    EXPECT_EQ(parseIntReg("s11"), 27);
    EXPECT_EQ(parseIntReg("a0"), 10);
    EXPECT_EQ(parseIntReg("a7"), 17);
    EXPECT_EQ(parseIntReg("a8"), -1);
    EXPECT_EQ(parseIntReg("t7"), -1);
    EXPECT_EQ(parseIntReg("s12"), -1);
}

TEST(RegNames, FpAbi)
{
    EXPECT_EQ(parseFpReg("ft0"), 0);
    EXPECT_EQ(parseFpReg("ft7"), 7);
    EXPECT_EQ(parseFpReg("ft8"), 28);
    EXPECT_EQ(parseFpReg("ft11"), 31);
    EXPECT_EQ(parseFpReg("fs0"), 8);
    EXPECT_EQ(parseFpReg("fs1"), 9);
    EXPECT_EQ(parseFpReg("fs2"), 18);
    EXPECT_EQ(parseFpReg("fs11"), 27);
    EXPECT_EQ(parseFpReg("fa0"), 10);
    EXPECT_EQ(parseFpReg("fa7"), 17);
    EXPECT_EQ(parseFpReg("fa8"), -1);
    EXPECT_EQ(parseFpReg("ft12"), -1);
}

TEST(RegNames, CrossFileRejection)
{
    EXPECT_EQ(parseIntReg("f1"), -1);
    EXPECT_EQ(parseIntReg("ft0"), -1);
    EXPECT_EQ(parseFpReg("x1"), -1);
    EXPECT_EQ(parseFpReg("a0"), -1);
}
