/** Assembler tests: encodings, labels, pseudo-ops, directives, errors. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/decoder.hpp"
#include "isa/disasm.hpp"

using namespace diag;
using namespace diag::assembler;
using namespace diag::isa;

namespace
{

/** Assemble one instruction at the text base and decode it. */
DecodedInst
one(const std::string &line)
{
    const Program p = assemble(line + "\n");
    return decode(p.word(kTextBase));
}

} // namespace

TEST(Assembler, BasicRType)
{
    const DecodedInst di = one("add x1, x2, x3");
    EXPECT_EQ(di.op, Op::ADD);
    EXPECT_EQ(di.rd, 1);
    EXPECT_EQ(di.rs1, 2);
    EXPECT_EQ(di.rs2, 3);
}

TEST(Assembler, AbiNames)
{
    const DecodedInst di = one("add a0, sp, t3");
    EXPECT_EQ(di.rd, 10);
    EXPECT_EQ(di.rs1, 2);
    EXPECT_EQ(di.rs2, 28);
}

TEST(Assembler, ImmediateFormats)
{
    EXPECT_EQ(one("addi x1, x2, -2048").imm, -2048);
    EXPECT_EQ(one("addi x1, x2, 2047").imm, 2047);
    EXPECT_EQ(one("addi x1, x2, 0x7f").imm, 0x7f);
    EXPECT_EQ(one("slli x1, x2, 31").imm, 31);
    EXPECT_THROW(assemble("addi x1, x2, 2048\n"), AsmError);
    EXPECT_THROW(assemble("slli x1, x2, 32\n"), AsmError);
}

TEST(Assembler, MemoryOperands)
{
    DecodedInst di = one("lw x5, 16(x6)");
    EXPECT_EQ(di.op, Op::LW);
    EXPECT_EQ(di.imm, 16);
    EXPECT_EQ(di.rs1, 6);
    di = one("sw x5, -4(x6)");
    EXPECT_EQ(di.op, Op::SW);
    EXPECT_EQ(di.imm, -4);
    di = one("lw x5, (x6)");
    EXPECT_EQ(di.imm, 0);
    di = one("flw f2, 8(x6)");
    EXPECT_EQ(di.op, Op::FLW);
    EXPECT_EQ(di.rd, fpReg(2));
    di = one("fsw fa0, 12(sp)");
    EXPECT_EQ(di.op, Op::FSW);
    EXPECT_EQ(di.rs2, fpReg(10));
}

TEST(Assembler, LabelsAndBranches)
{
    const Program p = assemble(R"(
        _start:
            addi x1, x0, 0
        loop:
            addi x1, x1, 1
            bne x1, x2, loop
            beq x1, x2, done
            addi x3, x0, 7
        done:
            ebreak
    )");
    const Addr loop = p.symbol("loop");
    EXPECT_EQ(loop, kTextBase + 4);
    const DecodedInst bne = decode(p.word(loop + 4));
    EXPECT_EQ(bne.op, Op::BNE);
    EXPECT_EQ(bne.imm, -4);
    const DecodedInst beq = decode(p.word(loop + 8));
    EXPECT_EQ(beq.imm, 8);
}

TEST(Assembler, ForwardAndBackwardJumps)
{
    const Program p = assemble(R"(
        start: j end
               nop
        end:   j start
    )");
    const DecodedInst fwd = decode(p.word(kTextBase));
    EXPECT_EQ(fwd.op, Op::JAL);
    EXPECT_EQ(fwd.rd, kNoReg);  // jal x0
    EXPECT_EQ(fwd.imm, 8);
    const DecodedInst back = decode(p.word(kTextBase + 8));
    EXPECT_EQ(back.imm, -8);
}

TEST(Assembler, LiSmallAndLarge)
{
    // Small immediate: one instruction.
    Program p = assemble("li x5, 100\n ebreak\n");
    EXPECT_EQ(decode(p.word(kTextBase)).op, Op::ADDI);
    EXPECT_EQ(decode(p.word(kTextBase)).imm, 100);
    EXPECT_EQ(decode(p.word(kTextBase + 4)).op, Op::EBREAK);
    // Large immediate: lui + addi.
    p = assemble("li x5, 0x12345678\n");
    const DecodedInst lui = decode(p.word(kTextBase));
    const DecodedInst addi = decode(p.word(kTextBase + 4));
    EXPECT_EQ(lui.op, Op::LUI);
    EXPECT_EQ(addi.op, Op::ADDI);
    EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm),
              0x12345678u);
    // Negative large immediate.
    p = assemble("li x5, -100000\n");
    const u32 total = static_cast<u32>(decode(p.word(kTextBase)).imm) +
                      static_cast<u32>(decode(p.word(kTextBase + 4)).imm);
    EXPECT_EQ(total, static_cast<u32>(-100000));
}

TEST(Assembler, LaAndHiLo)
{
    const Program p = assemble(R"(
        .data
        buf: .space 64
        .text
        _start:
            la a0, buf
            lui a1, %hi(buf)
            addi a1, a1, %lo(buf)
            lw a2, %lo(buf)(a1)
    )");
    const Addr buf = p.symbol("buf");
    const DecodedInst lui = decode(p.word(kTextBase));
    const DecodedInst addi = decode(p.word(kTextBase + 4));
    EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm),
              buf);
    const DecodedInst lui2 = decode(p.word(kTextBase + 8));
    const DecodedInst addi2 = decode(p.word(kTextBase + 12));
    EXPECT_EQ(static_cast<u32>(lui2.imm) + static_cast<u32>(addi2.imm),
              buf);
    const DecodedInst lw = decode(p.word(kTextBase + 16));
    EXPECT_EQ(lw.op, Op::LW);
}

TEST(Assembler, PseudoOps)
{
    EXPECT_EQ(one("nop").op, Op::ADDI);
    DecodedInst di = one("mv x3, x4");
    EXPECT_EQ(di.op, Op::ADDI);
    EXPECT_EQ(di.rs1, 4);
    di = one("not x3, x4");
    EXPECT_EQ(di.op, Op::XORI);
    EXPECT_EQ(di.imm, -1);
    di = one("neg x3, x4");
    EXPECT_EQ(di.op, Op::SUB);
    EXPECT_EQ(di.rs1, 0);  // sub x3, x0, x4
    EXPECT_EQ(di.rs2, 4);
    di = one("seqz x3, x4");
    EXPECT_EQ(di.op, Op::SLTIU);
    EXPECT_EQ(di.imm, 1);
    di = one("snez x3, x4");
    EXPECT_EQ(di.op, Op::SLTU);
    di = one("ret");
    EXPECT_EQ(di.op, Op::JALR);
    EXPECT_EQ(di.rs1, 1);
    di = one("fmv.s f1, f2");
    EXPECT_EQ(di.op, Op::FSGNJ_S);
    di = one("fneg.s f1, f2");
    EXPECT_EQ(di.op, Op::FSGNJN_S);
    di = one("fabs.s f1, f2");
    EXPECT_EQ(di.op, Op::FSGNJX_S);
}

TEST(Assembler, BranchAliases)
{
    const Program p = assemble(R"(
        _start:
        t:  bgt x1, x2, t
            ble x1, x2, t
            beqz x3, t
            bnez x3, t
            bltz x3, t
            bgtz x3, t
    )");
    DecodedInst di = decode(p.word(kTextBase));
    EXPECT_EQ(di.op, Op::BLT);   // bgt a,b -> blt b,a
    EXPECT_EQ(di.rs1, 2);
    EXPECT_EQ(di.rs2, 1);
    di = decode(p.word(kTextBase + 4));
    EXPECT_EQ(di.op, Op::BGE);
    di = decode(p.word(kTextBase + 8));
    EXPECT_EQ(di.op, Op::BEQ);
    EXPECT_EQ(di.rs2, 0);
    di = decode(p.word(kTextBase + 16));
    EXPECT_EQ(di.op, Op::BLT);
    di = decode(p.word(kTextBase + 20));
    EXPECT_EQ(di.op, Op::BLT);  // bgtz x3 -> blt x0, x3
    EXPECT_EQ(di.rs1, 0);
    EXPECT_EQ(di.rs2, 3);
}

TEST(Assembler, DataDirectives)
{
    const Program p = assemble(R"(
        .data
        words:  .word 1, 2, 0xdeadbeef
        halves: .half 0x1234, 0x5678
        bytes:  .byte 1, 2, 3
        .align 2
        aligned: .word 42
        str:    .asciz "hi\n"
        flt:    .float 1.5
    )");
    const Addr w = p.symbol("words");
    EXPECT_EQ(p.image.read32(w), 1u);
    EXPECT_EQ(p.image.read32(w + 4), 2u);
    EXPECT_EQ(p.image.read32(w + 8), 0xdeadbeefu);
    const Addr h = p.symbol("halves");
    EXPECT_EQ(p.image.read16(h), 0x1234u);
    EXPECT_EQ(p.image.read16(h + 2), 0x5678u);
    const Addr b = p.symbol("bytes");
    EXPECT_EQ(p.image.read8(b + 2), 3u);
    EXPECT_EQ(p.symbol("aligned") % 4, 0u);
    const Addr s = p.symbol("str");
    EXPECT_EQ(p.image.read8(s), 'h');
    EXPECT_EQ(p.image.read8(s + 1), 'i');
    EXPECT_EQ(p.image.read8(s + 2), '\n');
    EXPECT_EQ(p.image.read8(s + 3), 0u);
    const Addr f = p.symbol("flt");
    EXPECT_EQ(p.image.read32(f), 0x3fc00000u);  // 1.5f
}

TEST(Assembler, EquAndExpressions)
{
    const Program p = assemble(R"(
        .equ BASE, 0x2000
        .equ COUNT, 16
        _start:
            li a0, BASE + COUNT
            addi a1, x0, COUNT - 1
    )");
    // li BASE+COUNT exceeds 12 bits -> lui+addi pair.
    const DecodedInst lui = decode(p.word(kTextBase));
    const DecodedInst addi = decode(p.word(kTextBase + 4));
    EXPECT_EQ(static_cast<u32>(lui.imm) + static_cast<u32>(addi.imm),
              0x2010u);
    const DecodedInst a1 = decode(p.word(kTextBase + 8));
    EXPECT_EQ(a1.imm, 15);
}

TEST(Assembler, OrgDirective)
{
    const Program p = assemble(R"(
        .org 0x4000
        _start: nop
        .org 0x5000
        far: ebreak
    )");
    EXPECT_EQ(p.entry, 0x4000u);
    EXPECT_EQ(p.symbol("far"), 0x5000u);
    EXPECT_EQ(decode(p.word(0x5000)).op, Op::EBREAK);
}

TEST(Assembler, EntryResolution)
{
    // _start wins.
    Program p = assemble("nop\n_start: nop\n");
    EXPECT_EQ(p.entry, kTextBase + 4);
    // Default: text base.
    p = assemble("nop\n");
    EXPECT_EQ(p.entry, kTextBase);
}

TEST(Assembler, SimtInstructions)
{
    const Program p = assemble(R"(
        _start:
        head: simt_s a0, a1, a2, 4
            add a3, a3, a0
        tail: simt_e a0, a2, head
    )");
    const DecodedInst ss = decode(p.word(p.symbol("head")));
    EXPECT_EQ(ss.op, Op::SIMT_S);
    const auto sf = simtStartFields(ss);
    EXPECT_EQ(sf.rc, 10);
    EXPECT_EQ(sf.rStep, 11);
    EXPECT_EQ(sf.rEnd, 12);
    EXPECT_EQ(sf.interval, 4u);
    const DecodedInst se = decode(p.word(p.symbol("tail")));
    const auto ef = simtEndFields(se);
    EXPECT_EQ(ef.lOffset, 8u);
}

TEST(Assembler, Comments)
{
    const Program p = assemble(R"(
        # full-line comment
        _start:
            nop        # trailing comment
            nop        // c++ style
            nop        ; asm style
            ebreak
    )");
    EXPECT_EQ(decode(p.word(kTextBase + 12)).op, Op::EBREAK);
}

TEST(Assembler, Errors)
{
    EXPECT_THROW(assemble("bogus x1, x2\n"), AsmError);
    EXPECT_THROW(assemble("add x1, x2\n"), AsmError);       // arity
    EXPECT_THROW(assemble("add x1, x2, f3\n"), AsmError);   // reg file
    EXPECT_THROW(assemble("lw x1, 5000(x2)\n"), AsmError);  // offset
    EXPECT_THROW(assemble("j nowhere\n"), AsmError);        // undef sym
    EXPECT_THROW(assemble("dup: nop\ndup: nop\n"), AsmError);
    EXPECT_THROW(assemble(".align 99\n"), AsmError);
    const char *far_branch = R"(
        _start: beq x1, x2, far
        .org 0x10000
        far: nop
    )";
    EXPECT_THROW(assemble(far_branch), AsmError);
}

TEST(Assembler, ChunksMergeAdjacent)
{
    const Program p = assemble("nop\nnop\nnop\n");
    ASSERT_EQ(p.chunks.size(), 1u);
    EXPECT_EQ(p.chunks[0].base, kTextBase);
    EXPECT_EQ(p.chunks[0].size, 12u);
    EXPECT_EQ(p.totalBytes(), 12u);
}
