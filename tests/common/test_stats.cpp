/**
 * @file
 * StatGroup serialization and lifecycle: the byte-stable JSON dump
 * (golden-file regression), key escaping, and the two clear() modes.
 */
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/stats.hpp"

using namespace diag;

namespace
{

StatGroup
sampleGroup()
{
    StatGroup g("diag");
    g.set("activations", 2307);
    g.set("ipc", 1.5);
    g.set("neg_count", -42);
    g.set("pi", 3.14159265358979);
    g.set("zero", 0);
    return g;
}

std::string
dumpJsonOf(const StatGroup &g)
{
    std::ostringstream os;
    g.dumpJson(os);
    return os.str();
}

TEST(StatsJson, MatchesGoldenFileByteForByte)
{
    std::ifstream in(std::string(DIAG_GOLDEN_DIR) + "/stats_dump.json",
                     std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing tests/golden/stats_dump.json";
    std::stringstream want;
    want << in.rdbuf();
    EXPECT_EQ(dumpJsonOf(sampleGroup()), want.str());
}

TEST(StatsJson, ByteStableAcrossDumpsAndInsertionOrder)
{
    const std::string a = dumpJsonOf(sampleGroup());
    // Same counters written in a different order: identical bytes.
    StatGroup g("diag");
    g.set("zero", 0);
    g.set("pi", 3.14159265358979);
    g.set("ipc", 1.5);
    g.set("neg_count", -42);
    g.set("activations", 2307);
    EXPECT_EQ(a, dumpJsonOf(g));
    EXPECT_EQ(a, dumpJsonOf(sampleGroup()));
}

TEST(StatsJson, IntegersRenderWithoutFraction)
{
    StatGroup g("g");
    g.set("count", 123456789.0);
    EXPECT_NE(dumpJsonOf(g).find("\"count\": 123456789}"),
              std::string::npos);
}

TEST(StatsJson, EscapesHostileKeys)
{
    StatGroup g("g");
    g.set("quote\"back\\slash", 1);
    const std::string out = dumpJsonOf(g);
    EXPECT_NE(out.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST(StatsClear, RetainKeysZeroesValuesButKeepsSchema)
{
    StatGroup g = sampleGroup();
    g.clear();
    EXPECT_TRUE(g.has("activations"));
    EXPECT_EQ(g.get("activations"), 0.0);
    EXPECT_EQ(g.all().size(), 5u);
    // A dump after clear() lists the same keys (schema stability).
    EXPECT_NE(dumpJsonOf(g).find("\"pi\": 0"), std::string::npos);
}

TEST(StatsClear, DropKeysForgetsTheSchema)
{
    StatGroup g = sampleGroup();
    g.clear(/*retain_keys=*/false);
    EXPECT_FALSE(g.has("activations"));
    EXPECT_TRUE(g.all().empty());
    EXPECT_EQ(dumpJsonOf(g),
              "{\"group\": \"diag\", \"counters\": {}}\n");
}

TEST(StatsClear, MergeAfterClearStartsFresh)
{
    StatGroup g = sampleGroup();
    StatGroup other("diag");
    other.set("activations", 10);
    g.clear();
    g.merge(other);
    EXPECT_EQ(g.get("activations"), 10.0);
    EXPECT_EQ(g.get("ipc"), 0.0);  // retained key, still zero
}

} // namespace
