/** Host execution layer tests: work-stealing pool ordering and
 *  lifetime, nested submits, exception propagation, and the
 *  parallelMap determinism/merge contract (DESIGN.md §10). */
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "host/parallel.hpp"
#include "host/thread_pool.hpp"

using namespace diag;
using namespace diag::host;

TEST(ThreadPool, HardwareJobsAndResolve)
{
    EXPECT_GE(ThreadPool::hardwareJobs(), 1u);
    EXPECT_EQ(resolveJobs(0), ThreadPool::hardwareJobs());
    EXPECT_EQ(resolveJobs(1), 1u);
    EXPECT_EQ(resolveJobs(7), 7u);
}

TEST(ThreadPool, SingleWorkerRunsExternalTasksInSubmissionOrder)
{
    // One worker draining the FIFO injector queue: external
    // submissions must execute in submission order.
    ThreadPool pool(1);
    std::mutex m;
    std::vector<int> order;
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 64; ++i)
        futs.push_back(pool.submit([&m, &order, i]() {
            std::lock_guard<std::mutex> lk(m);
            order.push_back(i);
        }));
    for (auto &f : futs)
        f.wait();  // main thread must not help, or order interleaves
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPool, EveryTaskRunsExactlyOnce)
{
    std::atomic<unsigned> ran{0};
    std::vector<std::future<void>> futs;
    {
        ThreadPool pool(4);
        for (unsigned i = 0; i < 1000; ++i)
            futs.push_back(pool.submit([&ran]() { ++ran; }));
        for (auto &f : futs)
            pool.wait(std::move(f));
    }
    EXPECT_EQ(ran.load(), 1000u);
}

TEST(ThreadPool, DestructorDrainsUnwaitedTasks)
{
    // Dropping the pool without waiting any future still runs every
    // submitted task before ~ThreadPool returns.
    std::atomic<unsigned> ran{0};
    {
        ThreadPool pool(2);
        for (unsigned i = 0; i < 200; ++i)
            pool.submit([&ran]() { ++ran; });
    }
    EXPECT_EQ(ran.load(), 200u);
}

TEST(ThreadPool, ZeroWorkerPoolRunsTasksInWait)
{
    // threads==0 is valid: tasks execute on the waiting thread.
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 0u);
    auto fut = pool.submit([]() { return 42; });
    EXPECT_EQ(pool.wait(std::move(fut)), 42);
}

TEST(ThreadPool, NestedSubmitWaitDoesNotDeadlock)
{
    // A task that submits subtasks and blocks on them must make
    // progress even when it occupies the pool's only worker: wait()
    // executes pending tasks instead of sleeping.
    ThreadPool pool(1);
    auto outer = pool.submit([&pool]() {
        int sum = 0;
        for (int i = 1; i <= 8; ++i)
            sum += pool.wait(pool.submit([i]() { return i; }));
        return sum;
    });
    EXPECT_EQ(pool.wait(std::move(outer)), 36);
}

TEST(ThreadPool, ExceptionReachesTheWaiter)
{
    ThreadPool pool(2);
    auto fut = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(pool.wait(std::move(fut)), std::runtime_error);
    // The pool survives a throwing task and keeps executing.
    auto ok = pool.submit([]() { return 7; });
    EXPECT_EQ(pool.wait(std::move(ok)), 7);
}

TEST(ParallelMap, MatchesSerialForAnyJobCount)
{
    const auto fn = [](size_t i) {
        // Index-derived value: the only legal randomness source for
        // deterministic fan-out.
        return static_cast<int>((i * 2654435761u) % 1000);
    };
    const std::vector<int> serial = parallelMap<int>(1, 100, fn);
    for (unsigned jobs : {2u, 4u, 16u})
        EXPECT_EQ(parallelMap<int>(jobs, 100, fn), serial)
            << "jobs=" << jobs;
}

TEST(ParallelMap, RethrowsLowestIndexedFailure)
{
    const auto fn = [](size_t i) -> int {
        if (i == 3)
            throw std::runtime_error("first");
        if (i == 11)
            throw std::logic_error("second");
        return static_cast<int>(i);
    };
    for (unsigned jobs : {1u, 4u}) {
        try {
            parallelMap<int>(jobs, 16, fn);
            FAIL() << "expected a throw, jobs=" << jobs;
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first") << "jobs=" << jobs;
        }
    }
}

TEST(ParallelMap, ParallelForTouchesEachIndexOnce)
{
    std::vector<std::atomic<int>> hits(64);
    parallelFor(8, hits.size(),
                [&hits](size_t i) { ++hits[i]; });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ExceptionStormAllFuturesObserved)
{
    // Many throwing tasks under contention: every future must carry
    // either its value or its exception — none lost, none doubled,
    // and the pool must stay usable throughout.
    ThreadPool pool(4);
    constexpr unsigned kTasks = 600;
    std::vector<std::future<int>> futs;
    futs.reserve(kTasks);
    for (unsigned i = 0; i < kTasks; ++i)
        futs.push_back(pool.submit([i]() -> int {
            if (i % 3 == 0)
                throw std::runtime_error("storm");
            return static_cast<int>(i);
        }));
    unsigned threw = 0, returned = 0;
    for (unsigned i = 0; i < kTasks; ++i) {
        try {
            const int v = pool.wait(std::move(futs[i]));
            EXPECT_EQ(v, static_cast<int>(i));
            ++returned;
        } catch (const std::runtime_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, kTasks / 3);
    EXPECT_EQ(returned, kTasks - kTasks / 3);
    // And the pool still executes fresh work afterwards.
    EXPECT_EQ(pool.wait(pool.submit([]() { return 5; })), 5);
}

TEST(ThreadPool, ShutdownWhileQueuedFulfillsEveryPromise)
{
    // Destroy the pool while tasks (some throwing) are still queued:
    // the destructor must drain them, so every future observed *after*
    // destruction is ready with its value or exception — shutdown may
    // never leave a broken promise behind.
    std::vector<std::future<int>> futs;
    {
        // 0 workers: nothing runs until the destructor's drain loop.
        ThreadPool pool(0);
        for (int i = 0; i < 50; ++i)
            futs.push_back(pool.submit([i]() -> int {
                if (i % 5 == 0)
                    throw std::logic_error("queued at shutdown");
                return i;
            }));
        for (const auto &f : futs)
            EXPECT_TRUE(f.valid());
    }
    int threw = 0;
    for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(futs[static_cast<size_t>(i)].wait_for(
                      std::chrono::seconds(0)),
                  std::future_status::ready)
            << "task " << i << " dropped at shutdown";
        try {
            EXPECT_EQ(futs[static_cast<size_t>(i)].get(), i);
        } catch (const std::logic_error &) {
            ++threw;
        }
    }
    EXPECT_EQ(threw, 10);
}

TEST(ThreadPool, TrySubmitRejectsWhenSaturated)
{
    // 0 workers means nothing dequeues: pending() counts exactly the
    // submissions, so the watermark is deterministic.
    ThreadPool pool(0);
    std::vector<std::future<int>> futs;
    for (int i = 0; i < 4; ++i) {
        auto f = pool.trySubmit([i]() { return i; }, 4);
        ASSERT_TRUE(f.has_value()) << "rejected below the watermark";
        futs.push_back(std::move(*f));
    }
    EXPECT_EQ(pool.pending(), 4u);
    EXPECT_FALSE(pool.trySubmit([]() { return -1; }, 4).has_value());
    // Draining reopens the gate.
    for (auto &f : futs)
        pool.wait(std::move(f));
    EXPECT_EQ(pool.pending(), 0u);
    EXPECT_TRUE(pool.trySubmit([]() { return 9; }, 4).has_value());
}

TEST(ParallelMap, CancelledTokenSkipsRemainingTasks)
{
    // A token cancelled before the fan-out starts leaves every slot
    // default-constructed — the subset property in its purest form.
    CancelToken tok;
    tok.cancel();
    const auto out = parallelMap<int>(
        1, 16, [](size_t) { return 7; }, &tok);
    ASSERT_EQ(out.size(), 16u);
    for (const int v : out)
        EXPECT_EQ(v, 0);
}

TEST(ParallelMap, MidRunCancelStopsSerialFanOut)
{
    // Serial path: cancel fired by task 5 must stop the loop there.
    CancelToken tok;
    std::vector<int> ran;
    parallelMap<int>(1, 100, [&tok, &ran](size_t i) {
        ran.push_back(static_cast<int>(i));
        if (i == 5)
            tok.cancel();
        return 1;
    }, &tok);
    EXPECT_EQ(ran.size(), 6u);
}

TEST(ParallelMap, ExpiredDeadlineBehavesLikeCancel)
{
    const CancelToken tok = CancelToken::expiredToken();
    EXPECT_TRUE(tok.expired());
    EXPECT_TRUE(tok.stopRequested());
    for (unsigned jobs : {1u, 4u}) {
        const auto out = parallelMap<int>(
            jobs, 32, [](size_t) { return 3; }, &tok);
        for (const int v : out)
            EXPECT_EQ(v, 0) << "jobs=" << jobs;
    }
}
