/** Lockstep differential tests on the real benchmark kernels: after a
 *  serial run, the DiAG model and the OoO baseline must leave exactly
 *  the same architectural memory state as the golden interpreter —
 *  over the entire touched address space, not just the checked
 *  outputs. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "harness/runner.hpp"
#include "ooo/processor.hpp"
#include "sim/golden.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::workloads;

namespace
{

/** Full-state comparison of two memory images over resident pages. */
void
expectSameMemory(const SparseMemory &got, const SparseMemory &want,
                 const std::string &label)
{
    u64 mismatches = 0;
    want.forEachPage([&](Addr base) {
        for (Addr off = 0; off < SparseMemory::kPageSize && mismatches < 4;
             off += 4) {
            const u32 g = got.read32(base + off);
            const u32 w = want.read32(base + off);
            if (g != w) {
                ++mismatches;
                ADD_FAILURE() << label << ": mismatch at 0x" << std::hex
                              << base + off << " got " << g << " want "
                              << w;
            }
        }
    });
    EXPECT_EQ(mismatches, 0u) << label;
}

class Lockstep : public ::testing::TestWithParam<std::string>
{};

std::vector<std::string>
lockstepNames()
{
    // A representative cross-section (running all 20 on three engines
    // here would duplicate the engine-integration suite).
    return {"backprop", "bfs",  "nw",  "kmeans",
            "mcf",      "lbm",  "xz",  "deepsjeng"};
}

} // namespace

TEST_P(Lockstep, DiagAndOooMatchGoldenMemory)
{
    const Workload w = findWorkload(GetParam());
    const Program prog = assembler::assemble(w.asm_serial);

    // All kernels expect a0 = tid, a1 = nthreads.
    sim::GoldenSim gold(prog);
    w.init(gold.memory());
    gold.setReg(10, 0);
    gold.setReg(11, 1);
    const sim::RunResult gr = gold.run(w.max_insts);
    ASSERT_TRUE(gr.halted);

    const std::vector<std::pair<isa::RegId, u32>> init_regs = {
        {isa::RegId{10}, 0}, {isa::RegId{11}, 1}};

    core::DiagProcessor dproc(core::DiagConfig::f4c16());
    dproc.loadProgram(prog);
    w.init(dproc.memory());
    const sim::RunStats drs = dproc.runThreads(
        prog, {core::ThreadSpec{prog.entry, init_regs}}, w.max_insts);
    ASSERT_TRUE(drs.halted);
    ASSERT_EQ(drs.instructions, gr.inst_count) << "diag count";
    expectSameMemory(dproc.memory(), gold.memory(), "diag");

    ooo::OooProcessor oproc(ooo::OooConfig::baseline8());
    oproc.loadProgram(prog);
    w.init(oproc.memory());
    const sim::RunStats ors = oproc.runThreads(
        prog, {ooo::ThreadSpec{prog.entry, init_regs}}, w.max_insts);
    ASSERT_TRUE(ors.halted);
    ASSERT_EQ(ors.instructions, gr.inst_count) << "ooo count";
    expectSameMemory(oproc.memory(), gold.memory(), "ooo");
}

INSTANTIATE_TEST_SUITE_P(Kernels, Lockstep,
                         ::testing::ValuesIn(lockstepNames()),
                         [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// Paper-shape regression guards: the aggregate relationships the
// reproduction stands on (EXPERIMENTS.md) must not silently regress.
// ---------------------------------------------------------------------

namespace
{

double
relPerf(const core::DiagConfig &cfg, const Workload &w,
        const harness::RunSpec &dspec, const ooo::OooConfig &ocfg,
        const harness::RunSpec &ospec)
{
    const auto d = harness::runOnDiag(cfg, w, dspec);
    const auto o = harness::runOnOoo(ocfg, w, ospec);
    return static_cast<double>(o.stats.cycles) /
           static_cast<double>(d.stats.cycles);
}

} // namespace

TEST(PaperShape, MorePesHelpSerialPrograms)
{
    // Fig 9a/10a shape: the 256-PE config beats the 32-PE config on
    // kernels whose loops exceed two clusters.
    for (const char *name : {"backprop", "srad", "lbm"}) {
        const Workload w = findWorkload(name);
        const double small =
            relPerf(core::DiagConfig::f4c2(), w, {1, false},
                    ooo::OooConfig::baseline8(), {1, false});
        const double large =
            relPerf(core::DiagConfig::f4c16(), w, {1, false},
                    ooo::OooConfig::baseline8(), {1, false});
        EXPECT_GT(large, 1.2 * small) << name;
    }
}

TEST(PaperShape, ComputeBeatsMemoryBoundRelatively)
{
    // DiAG's relative performance on a compute-regular kernel exceeds
    // its relative performance on a control/memory-bound one.
    const double compute =
        relPerf(core::DiagConfig::f4c32(), findWorkload("kmeans"),
                {1, false}, ooo::OooConfig::baseline8(), {1, false});
    const double memory =
        relPerf(core::DiagConfig::f4c32(), findWorkload("bfs"),
                {1, false}, ooo::OooConfig::baseline8(), {1, false});
    EXPECT_GT(compute, memory);
}

TEST(PaperShape, SimtPipeliningBeatsPlainMtOnStencils)
{
    // Fig 9b purple-over-blue shape on a pipelineable benchmark.
    const Workload w = findWorkload("srad");
    const double mt = relPerf(
        harness::diagMultiThreadConfig(), w,
        {harness::kDiagMtThreads, false},
        ooo::OooConfig::multicore12(), {harness::kOooMtThreads, false});
    const double simt = relPerf(
        harness::diagMtSimtConfig(), w,
        {harness::kDiagMtSimtThreads, true},
        ooo::OooConfig::multicore12(), {harness::kOooMtThreads, false});
    EXPECT_GT(simt, 1.5 * mt);
}

TEST(PaperShape, EnergyEfficiencyFavorsDiagOnReusedCompute)
{
    // Fig 12 shape: on a reuse-friendly compute kernel DiAG spends
    // less energy than the baseline.
    const Workload w = findWorkload("kmeans");
    const auto d = harness::runOnDiag(core::DiagConfig::f4c32(), w,
                                      {1, false});
    const auto o = harness::runOnOoo(ooo::OooConfig::baseline8(), w,
                                     {1, false});
    EXPECT_LT(d.energy.totalPj(), o.energy.totalPj());
}

TEST(PaperShape, MemoryStallsDominateDiagStalls)
{
    // §7.3.2 shape on a memory-heavy benchmark.
    const Workload w = findWorkload("mcf");
    const auto d = harness::runOnDiag(core::DiagConfig::f4c32(), w,
                                      {1, false});
    const auto &c = d.stats.counters;
    const double mem = c.get("mem_stall_cycles") +
                       c.get("mem_queue_stall_cycles");
    const double ctrl = c.get("ctrl_stall_cycles");
    EXPECT_GT(mem, ctrl);
}
