/** Harness utility tests: table rendering, geomean, config presets,
 *  and the verbose trace facility. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "common/log.hpp"
#include "diag/processor.hpp"
#include "harness/runner.hpp"
#include "harness/table.hpp"

using namespace diag;
using namespace diag::harness;

TEST(Harness, GeomeanBasics)
{
    EXPECT_DOUBLE_EQ(geomean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geomean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({0.5, 2.0}), 1.0, 1e-12);
}

TEST(Harness, TableNumFormatting)
{
    EXPECT_EQ(Table::num(1.234, 2), "1.23");
    EXPECT_EQ(Table::num(1.0, 0), "1");
    EXPECT_EQ(Table::num(-0.5, 1), "-0.5");
}

TEST(Harness, SingleThreadConfigsMatchTable2)
{
    const auto cfgs = diagSingleThreadConfigs();
    ASSERT_EQ(cfgs.size(), 3u);
    EXPECT_EQ(cfgs[0].totalPes(), 32u);
    EXPECT_EQ(cfgs[1].totalPes(), 256u);
    EXPECT_EQ(cfgs[2].totalPes(), 512u);
    for (const auto &cfg : cfgs) {
        EXPECT_EQ(cfg.pes_per_cluster, 16u);
        EXPECT_TRUE(cfg.fp_supported);
        EXPECT_DOUBLE_EQ(cfg.freq_ghz, 2.0);
    }
}

TEST(Harness, MtConfigsShapeThePaper)
{
    const core::DiagConfig mt = diagMultiThreadConfig();
    EXPECT_EQ(mt.num_rings, 16u);          // 16x2 (paper §7.2.1)
    EXPECT_EQ(mt.clustersPerRing(), 2u);
    const core::DiagConfig simt = diagMtSimtConfig();
    EXPECT_EQ(simt.num_rings, 8u);         // 8x4 chained rings
    EXPECT_EQ(simt.clustersPerRing(), 4u);
    EXPECT_TRUE(simt.simt_enabled);
}

TEST(Harness, NonPartitionableWorkloadRunsOneThread)
{
    const workloads::Workload lud = workloads::findWorkload("lud");
    ASSERT_FALSE(lud.partitionable);
    // Requesting 16 threads silently runs 1 (disjointness guarantee).
    const EngineRun run =
        runOnDiag(diagMultiThreadConfig(), lud, {16, false});
    EXPECT_TRUE(run.checked);
    EXPECT_EQ(run.stats.counters.get("threads"), 1.0);
}

TEST(Harness, VerboseTraceEmitsActivations)
{
    // The trace facility must not perturb results.
    const Program p = assembler::assemble(R"(
        _start:
            li a0, 0
            li a1, 10
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    core::DiagProcessor quiet(core::DiagConfig::f4c2());
    const sim::RunStats a = quiet.run(p);
    setVerbose(true);
    core::DiagProcessor loud(core::DiagConfig::f4c2());
    const sim::RunStats b = loud.run(p);
    setVerbose(false);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}
