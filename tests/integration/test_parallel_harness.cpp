/** Host-parallel harness sweeps: runMatrix / validateBoundMany must
 *  produce results identical to the serial path for any job count
 *  (the figure benches rely on this for byte-stable tables). */
#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "harness/validate.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::harness;

TEST(ParallelHarness, RunMatrixMatchesSerial)
{
    const workloads::Workload lud = workloads::findWorkload("lud");
    const workloads::Workload bfs = workloads::findWorkload("bfs");
    std::vector<MatrixCell> cells;
    for (const workloads::Workload *w : {&lud, &bfs}) {
        cells.push_back({.w = w,
                         .spec = {1, false},
                         .on_diag = false,
                         .diag_cfg = {},
                         .ooo_cfg = ooo::OooConfig::baseline8()});
        cells.push_back({.w = w,
                         .spec = {1, false},
                         .on_diag = true,
                         .diag_cfg = core::DiagConfig::f4c16(),
                         .ooo_cfg = {}});
    }
    const std::vector<EngineRun> serial = runMatrix(cells, 1);
    const std::vector<EngineRun> par = runMatrix(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        EXPECT_TRUE(serial[i].checked) << "cell " << i;
        EXPECT_TRUE(par[i].checked) << "cell " << i;
        EXPECT_EQ(par[i].stats.cycles, serial[i].stats.cycles)
            << "cell " << i;
        EXPECT_EQ(par[i].stats.instructions,
                  serial[i].stats.instructions)
            << "cell " << i;
        EXPECT_DOUBLE_EQ(par[i].energy.totalPj(),
                         serial[i].energy.totalPj())
            << "cell " << i;
    }
}

TEST(ParallelHarness, ValidateBoundManyMatchesSerial)
{
    const workloads::Workload lud = workloads::findWorkload("lud");
    const workloads::Workload nn = workloads::findWorkload("nn");
    const std::vector<BoundCell> cells{
        {.cfg = core::DiagConfig::f4c32(), .w = &lud,
         .use_simt = false},
        {.cfg = core::DiagConfig::f4c32(), .w = &nn,
         .use_simt = !nn.asm_simt.empty()},
    };
    const auto serial = validateBoundMany(cells, 1);
    const auto par = validateBoundMany(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    ASSERT_EQ(par.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        // Rendered JSON covers every field, including per-region
        // floating-point values, byte for byte.
        EXPECT_EQ(renderValidationJson(par[i]),
                  renderValidationJson(serial[i]))
            << "cell " << i;
        EXPECT_TRUE(serial[i].ok()) << "cell " << i;
    }
}
