/** Cross-engine integration tests: the benchmark workloads must
 *  produce correct outputs on the DiAG model and the OoO baseline, in
 *  serial, multithreaded, and (where available) simt variants — the
 *  same property the figure benches depend on. */
#include <gtest/gtest.h>

#include "harness/runner.hpp"

using namespace diag;
using namespace diag::harness;

namespace
{

std::vector<std::string>
allNames()
{
    std::vector<std::string> names;
    for (const auto &w : workloads::rodiniaSuite())
        names.push_back(w.name);
    for (const auto &w : workloads::specSuite())
        names.push_back(w.name);
    return names;
}

} // namespace

class EngineWorkload : public ::testing::TestWithParam<std::string>
{};

TEST_P(EngineWorkload, DiagSerialChecksOut)
{
    const workloads::Workload w = workloads::findWorkload(GetParam());
    // runOnDiag fatal()s if the run does not halt or fails the check.
    const EngineRun run =
        runOnDiag(core::DiagConfig::f4c16(), w, {1, false});
    EXPECT_TRUE(run.checked);
    EXPECT_GT(run.stats.cycles, 0u);
    EXPECT_GT(run.energy.totalPj(), 0.0);
}

TEST_P(EngineWorkload, OooSerialChecksOut)
{
    const workloads::Workload w = workloads::findWorkload(GetParam());
    const EngineRun run =
        runOnOoo(ooo::OooConfig::baseline8(), w, {1, false});
    EXPECT_TRUE(run.checked);
    EXPECT_GT(run.stats.ipc(), 0.05);
    EXPECT_LT(run.stats.ipc(), 8.0);  // cannot beat the commit width
}

TEST_P(EngineWorkload, DiagMultiThreadChecksOut)
{
    const workloads::Workload w = workloads::findWorkload(GetParam());
    const EngineRun run = runOnDiag(diagMultiThreadConfig(), w,
                                    {kDiagMtThreads, false});
    EXPECT_TRUE(run.checked);
}

TEST_P(EngineWorkload, OooMultiThreadChecksOut)
{
    const workloads::Workload w = workloads::findWorkload(GetParam());
    const EngineRun run = runOnOoo(ooo::OooConfig::multicore12(), w,
                                   {kOooMtThreads, false});
    EXPECT_TRUE(run.checked);
}

TEST_P(EngineWorkload, DiagSimtChecksOut)
{
    const workloads::Workload w = workloads::findWorkload(GetParam());
    if (w.asm_simt.empty())
        GTEST_SKIP() << w.name << " has no simt variant";
    const EngineRun run = runOnDiag(diagMtSimtConfig(), w,
                                    {kDiagMtSimtThreads, true});
    EXPECT_TRUE(run.checked);
    EXPECT_GT(run.stats.counters.get("simt_threads"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(All, EngineWorkload,
                         ::testing::ValuesIn(allNames()),
                         [](const auto &info) { return info.param; });

TEST(EngineComparison, MultiThreadingSpeedsUpPartitionableWork)
{
    // Spatial TLP must help both architectures on partitionable
    // kernels (paper §4.4: spatial parallelism).
    const workloads::Workload w = workloads::findWorkload("kmeans");
    const EngineRun d1 =
        runOnDiag(diagMultiThreadConfig(), w, {1, false});
    const EngineRun d16 =
        runOnDiag(diagMultiThreadConfig(), w, {16, false});
    EXPECT_LT(d16.stats.cycles, d1.stats.cycles);

    const EngineRun o1 =
        runOnOoo(ooo::OooConfig::multicore12(), w, {1, false});
    const EngineRun o12 =
        runOnOoo(ooo::OooConfig::multicore12(), w, {12, false});
    EXPECT_LT(o12.stats.cycles, o1.stats.cycles);
}

TEST(EngineComparison, MorePesNeverHurtMuch)
{
    // F4C32 should never be dramatically slower than F4C2 (it strictly
    // adds resources); allow small noise from allocation differences.
    for (const char *name : {"backprop", "srad", "deepsjeng"}) {
        const workloads::Workload w = workloads::findWorkload(name);
        const EngineRun small =
            runOnDiag(core::DiagConfig::f4c2(), w, {1, false});
        const EngineRun large =
            runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
        EXPECT_LT(large.stats.cycles,
                  static_cast<Cycle>(1.10 *
                                     static_cast<double>(
                                         small.stats.cycles)))
            << name;
    }
}

TEST(EngineComparison, ReuseConfigBeatsNoReuse)
{
    const workloads::Workload w = workloads::findWorkload("hotspot");
    core::DiagConfig off = core::DiagConfig::f4c32();
    off.reuse_enabled = false;
    const EngineRun with_reuse =
        runOnDiag(core::DiagConfig::f4c32(), w, {1, false});
    const EngineRun without = runOnDiag(off, w, {1, false});
    EXPECT_LT(with_reuse.stats.cycles, without.stats.cycles);
}
