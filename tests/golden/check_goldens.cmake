# Diff an analyzer tool's JSON for every bundled workload against the
# checked-in snapshot. Regenerate with tools/update_goldens.sh.
#   -DTOOL=<binary>   the analyzer to run (--all-workloads --json)
#   -DGOLDEN=<file>   the snapshot to compare byte-for-byte
execute_process(
    COMMAND ${TOOL} --all-workloads --json
    OUTPUT_VARIABLE actual
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "${TOOL} exited ${rc}")
endif()
file(READ ${GOLDEN} expected)
if(NOT actual STREQUAL expected)
    string(LENGTH "${actual}" alen)
    string(LENGTH "${expected}" elen)
    message(FATAL_ERROR
        "analysis output diverged from ${GOLDEN} "
        "(${alen} vs ${elen} bytes); if the change is intentional, "
        "run tools/update_goldens.sh <build-dir> and commit the diff")
endif()
