/**
 * Memory-dependence pass tests: the load classification lattice
 * (lane-forwardable / LSU-serialized / unknown-alias), the
 * cross-iteration store-to-load race error inside simt regions with
 * its lane-forwardable counterpart accepted, CAM pressure notes, and
 * the byte-stability of the finalized diagnostic stream.
 */
#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::analysis;

namespace
{

ProgramAnalysis
analyze(const std::string &src, const LintOptions &opt = {})
{
    return analyzeProgram(assembler::assemble(src), opt);
}

bool
has(const LintResult &r, const std::string &pass, Severity sev,
    const std::string &needle)
{
    for (const Diagnostic &d : r.diags) {
        if (d.pass == pass && d.severity == sev &&
            d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

/** The pipelined-thread race: every iteration reads and writes the
 *  same fixed address, so the value loaded depends on thread timing. */
const char *kCarriedRace = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        lw t0, 0(s2)
        addi t0, t0, 1
        sw t0, 0(s2)
        simt_e a2, a4, head
        ebreak
)";

/** The accepted counterpart: same store->load shape, but the address
 *  moves with the loop-control lane, so each thread touches its own
 *  cell and the memory lanes forward the store to the load. */
const char *kForwardable = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        li t6, 7
        sw t6, 0(t5)
        lw t4, 0(t5)
        sw t4, 4(t5)
        simt_e a2, a4, head
        ebreak
)";

} // namespace

TEST(MemDep, CrossIterationRaceIsRejected)
{
    const ProgramAnalysis a = analyze(kCarriedRace);
    EXPECT_GT(a.lint.errors(), 0u) << renderText(a.lint);
    EXPECT_TRUE(has(a.lint, "memdep", Severity::Error,
                    "cross-iteration store-to-load race"))
        << renderText(a.lint);
    ASSERT_EQ(a.memdep.regions.size(), 1u);
    EXPECT_TRUE(a.memdep.regions[0].carried_race);
}

TEST(MemDep, ForwardableCounterpartIsAccepted)
{
    const ProgramAnalysis a = analyze(kForwardable);
    EXPECT_EQ(a.lint.errors(), 0u) << renderText(a.lint);
    ASSERT_EQ(a.memdep.regions.size(), 1u);
    const RegionMemDep &r = a.memdep.regions[0];
    EXPECT_FALSE(r.carried_race);
    ASSERT_EQ(r.loads.size(), 1u);
    EXPECT_EQ(r.loads[0].cls, LoadClass::LaneForwardable);
    EXPECT_TRUE(has(a.lint, "memdep", Severity::Note,
                    "forwards from the store"))
        << renderText(a.lint);
}

TEST(MemDep, PartialOverlapSerializesThroughLsu)
{
    const ProgramAnalysis a = analyze(R"(
        _start:
            li t0, 0x100000
            li t1, 5
            sw t1, 0(t0)
            lw t2, 2(t0)
            sw t2, 64(t0)
            ebreak
    )");
    ASSERT_EQ(a.memdep.loads.size(), 1u);
    EXPECT_EQ(a.memdep.loads[0].cls, LoadClass::LsuSerialized);
    EXPECT_TRUE(has(a.lint, "memdep", Severity::Note,
                    "serializes through the LSU"))
        << renderText(a.lint);
}

TEST(MemDep, OpaqueStoreLeavesLoadUndecided)
{
    const ProgramAnalysis a = analyze(R"(
        _start:
            li t0, 0x100000
            lw t3, 0(t0)
            li t1, 5
            sw t1, 0(t3)
            lw t2, 4(t0)
            sw t2, 64(t0)
            ebreak
    )");
    // The second load's window holds a store through an opaque base:
    // whether the CAM matches is unknowable statically.
    bool found = false;
    for (const LoadDep &ld : a.memdep.loads)
        if (ld.cls == LoadClass::UnknownAlias)
            found = true;
    EXPECT_TRUE(found);
}

TEST(MemDep, StrideMismatchWarnsOfPossibleAliasing)
{
    const ProgramAnalysis a = analyze(R"(
        _start:
            li s2, 0x100000
            li a2, 0
            li a3, 4
            li a4, 64
        head:
            simt_s a2, a3, a4, 1
            add t5, s2, a2
            slli t6, a2, 1
            add t6, s2, t6
            li t3, 9
            sw t3, 0(t5)
            lw t4, 0(t6)
            sw t4, 4(t6)
            simt_e a2, a4, head
            ebreak
    )");
    EXPECT_TRUE(has(a.lint, "memdep", Severity::Warning,
                    "share a base address"))
        << renderText(a.lint);
}

TEST(MemDep, CamPressureNoteWhenDemandExceedsEntries)
{
    LintOptions opt;
    opt.timing.mem_lane_entries = 4;
    const ProgramAnalysis a = analyze(kForwardable, opt);
    EXPECT_TRUE(has(a.lint, "memdep", Severity::Note,
                    "memory-lane pressure"))
        << renderText(a.lint);
}

// ---------------------------------------------------------------------
// Deterministic diagnostics: the finalized stream is sorted by
// (pc, pass, severity), deduplicated, and byte-stable across runs.
// ---------------------------------------------------------------------

TEST(Diagnostics, FinalizedStreamIsSortedAndDeduped)
{
    LintResult r;
    r.add(Severity::Note, 0x20, "bbb", "later");
    r.add(Severity::Warning, 0x10, "bbb", "mid");
    r.add(Severity::Error, 0x10, "aaa", "first");
    r.add(Severity::Warning, 0x10, "bbb", "mid");  // exact duplicate
    r.finalize();
    ASSERT_EQ(r.diags.size(), 3u);
    EXPECT_EQ(r.diags[0].pass, "aaa");
    EXPECT_EQ(r.diags[1].message, "mid");
    EXPECT_EQ(r.diags[2].pc, 0x20u);
}

TEST(Diagnostics, WorkloadAnalysisIsByteStable)
{
    auto renderAll = [](const std::string &src) {
        const ProgramAnalysis a = analyzeProgram(
            assembler::assemble(src), LintOptions::abiEntry());
        return renderJson(a.lint) + renderBoundJson(a.bound);
    };
    auto checkSuite = [&](const std::vector<workloads::Workload> &ws) {
        for (const auto &w : ws) {
            EXPECT_EQ(renderAll(w.asm_serial), renderAll(w.asm_serial))
                << w.name;
            if (!w.asm_simt.empty()) {
                EXPECT_EQ(renderAll(w.asm_simt),
                          renderAll(w.asm_simt))
                    << w.name;
            }
        }
    };
    checkSuite(workloads::rodiniaSuite());
    checkSuite(workloads::specSuite());
}
