/**
 * Static analyzer tests: for each pass one fixture that triggers its
 * diagnostics and one that stays silent, plus differential checks
 * asserting the static SIMT legality scan agrees with the ring control
 * unit's runtime scan on crafted regions and every bundled workload.
 */
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "analysis/simt_scan.hpp"
#include "asm/assembler.hpp"
#include "diag/ring.hpp"
#include "isa/decoder.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::analysis;

namespace
{

LintResult
lint(const std::string &src, const LintOptions &opt = {})
{
    return lintProgram(assembler::assemble(src), opt);
}

/** True when some finding of @p pass at @p sev mentions @p needle. */
bool
has(const LintResult &r, const std::string &pass, Severity sev,
    const std::string &needle)
{
    for (const Diagnostic &d : r.diags) {
        if (d.pass == pass && d.severity == sev &&
            d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

unsigned
countPass(const LintResult &r, const std::string &pass)
{
    unsigned n = 0;
    for (const Diagnostic &d : r.diags)
        n += d.pass == pass;
    return n;
}

std::string
nops(unsigned n)
{
    std::string s;
    for (unsigned i = 0; i < n; ++i)
        s += "    nop\n";
    return s;
}

/** A kernel with no findings at all: every lane written before read,
 *  every value consumed, terminated by ebreak, no loops. */
const char *kCleanProgram = R"(
    _start:
        li t0, 0x100000
        li t1, 7
        addi t2, t1, 1
        sw t2, 0(t0)
        ebreak
)";

} // namespace

// ---------------------------------------------------------------------
// Pass 1: CFG
// ---------------------------------------------------------------------

TEST(LintCfg, CleanProgramHasNoFindings)
{
    const LintResult r = lint(kCleanProgram);
    EXPECT_TRUE(r.clean()) << renderText(r);
}

TEST(LintCfg, FlagsUnreachableBlock)
{
    const LintResult r = lint(R"(
        _start:
            li t0, 1
            sw t0, 0(t0)
            ebreak
            addi t1, t0, 1
            addi t2, t0, 2
    )");
    EXPECT_TRUE(has(r, "cfg", Severity::Warning,
                    "unreachable code: 2 instruction"))
        << renderText(r);
    EXPECT_EQ(r.errors(), 0u);
}

TEST(LintCfg, FallingOffTheImageIsAnError)
{
    const LintResult r = lint(R"(
        _start:
            li t0, 1
            sw t0, 0(t0)
    )");
    EXPECT_EQ(r.errors(), 1u) << renderText(r);
    EXPECT_TRUE(has(r, "cfg", Severity::Error, "fall off the end"));
}

TEST(LintCfg, ReachableInvalidEncodingIsAnError)
{
    const LintResult r = lint(R"(
        _start:
            .word 0xffffffff
            ebreak
    )");
    EXPECT_TRUE(has(r, "cfg", Severity::Error,
                    "reachable invalid instruction encoding"))
        << renderText(r);
}

TEST(LintCfg, DataWordsAfterCodeAreNotUnreachableCode)
{
    // Constant-pool zeros behind the ebreak do not decode and must not
    // be flagged as unreachable instructions.
    const LintResult r = lint(R"(
        _start:
            li t0, 1
            sw t0, 0(t0)
            ebreak
            .word 0
            .word 0
    )");
    EXPECT_EQ(countPass(r, "cfg"), 0u) << renderText(r);
}

// ---------------------------------------------------------------------
// Pass 2: register-lane liveness
// ---------------------------------------------------------------------

TEST(LintLiveness, FlagsUndefinedLaneRead)
{
    const LintResult r = lint(R"(
        _start:
            li t0, 0x100000
            add t1, t0, s0
            sw t1, 0(t0)
            ebreak
    )");
    EXPECT_TRUE(has(r, "liveness", Severity::Warning,
                    "read here but no write precedes it"))
        << renderText(r);
}

TEST(LintLiveness, AbiEntryRegistersAreDefined)
{
    const char *src = R"(
        _start:
            li t0, 0x100000
            slli t1, a0, 2
            add t1, t1, t0
            sw a1, 0(t1)
            ebreak
    )";
    // Reading a0/a1 without a convention is an undefined-lane read...
    EXPECT_TRUE(has(lint(src), "liveness", Severity::Warning,
                    "read here but no write precedes it"));
    // ...but clean under the harness convention (a0=tid, a1=nthreads).
    const LintResult abi = lint(src, LintOptions::abiEntry());
    EXPECT_EQ(countPass(abi, "liveness"), 0u) << renderText(abi);
}

TEST(LintLiveness, FlagsDeadWrite)
{
    const LintResult r = lint(R"(
        _start:
            li t1, 0x100000
            li t0, 1
            li t0, 2
            sw t0, 0(t1)
            ebreak
    )");
    EXPECT_TRUE(has(r, "liveness", Severity::Warning, "dead write"))
        << renderText(r);
}

TEST(LintLiveness, ValueCarriedAcrossLoopIsNotDead)
{
    // s0 accumulates across iterations: live along the back edge.
    const LintResult r = lint(R"(
        _start:
            li t0, 4
            li s0, 0
        loop:
            add s0, s0, t0
            addi t0, t0, -1
            bnez t0, loop
            li t1, 0x100000
            sw s0, 0(t1)
            ebreak
    )");
    EXPECT_EQ(countPass(r, "liveness"), 0u) << renderText(r);
}

TEST(LintLiveness, FlagsResultDiscardedIntoX0)
{
    const LintResult r = lint(R"(
        _start:
            li t0, 3
            add x0, t0, t0
            sw t0, 0(t0)
            ebreak
    )");
    EXPECT_TRUE(has(r, "liveness", Severity::Warning,
                    "discards its result into x0"))
        << renderText(r);
}

TEST(LintLiveness, CanonicalNopIsNotAnX0Discard)
{
    const LintResult r = lint(R"(
        _start:
            nop
            li t0, 3
            sw t0, 0(t0)
            ebreak
    )");
    EXPECT_EQ(countPass(r, "liveness"), 0u) << renderText(r);
}

// ---------------------------------------------------------------------
// Pass 3: SIMT region legality
// ---------------------------------------------------------------------

namespace
{

/** A legal one-line pipelineable region (vector increment). */
const char *kLegalSimt = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        lw t6, 0(t5)
        addi t6, t6, 1
        sw t6, 0(t5)
        simt_e a2, a4, head
        ebreak
)";

/** Body reads s0 then writes it: a cross-iteration lane dependence. */
const char *kLoopCarried = R"(
    _start:
        li s0, 0
        li a2, 0
        li a3, 1
        li a4, 8
    head:
        simt_s a2, a3, a4, 1
        add s0, s0, a2
        simt_e a2, a4, head
        li t0, 0x100000
        sw s0, 0(t0)
        ebreak
)";

/** An inner loop inside the region: backward control flow. */
const char *kBackwardBranch = R"(
    _start:
        li s0, 0
        li a2, 0
        li a3, 1
        li a4, 8
    head:
        simt_s a2, a3, a4, 1
        li t0, 2
    inner:
        addi t0, t0, -1
        bnez t0, inner
        simt_e a2, a4, head
        li t1, 0x100000
        sw s0, 0(t1)
        ebreak
)";

} // namespace

TEST(LintSimt, LegalRegionIsSilent)
{
    const LintResult r = lint(kLegalSimt);
    EXPECT_TRUE(r.clean()) << renderText(r);
}

TEST(LintSimt, FlagsUnmatchedSimtStart)
{
    // No simt_e anywhere: the scan runs into the ebreak.
    const LintResult r = lint(R"(
        _start:
            li a2, 0
            li a3, 1
            li a4, 8
        head:
            simt_s a2, a3, a4, 1
            add t0, a2, a3
            sw t0, 0(t0)
            ebreak
    )");
    EXPECT_EQ(countPass(r, "simt"), 1u) << renderText(r);
    EXPECT_TRUE(has(r, "simt", Severity::Warning,
                    "executes serially"));
}

TEST(LintSimt, FlagsNestedRegions)
{
    const LintResult r = lint(R"(
        _start:
            li a2, 0
            li a3, 1
            li a4, 8
        head:
            simt_s a2, a3, a4, 1
        head2:
            simt_s a2, a3, a4, 1
            simt_e a2, a4, head2
            simt_e a2, a4, head
            ebreak
    )");
    EXPECT_TRUE(has(r, "simt", Severity::Warning, "nested simt_s"))
        << renderText(r);
}

TEST(LintSimt, FlagsCrossIterationDependence)
{
    const LintResult r = lint(kLoopCarried);
    EXPECT_TRUE(has(r, "simt", Severity::Warning,
                    "carries a value across iterations"))
        << renderText(r);
    EXPECT_TRUE(has(r, "simt", Severity::Warning, "x8"));  // s0
}

TEST(LintSimt, FlagsBackwardBranchInRegion)
{
    const LintResult r = lint(kBackwardBranch);
    EXPECT_TRUE(has(r, "simt", Severity::Warning, "backward branch"))
        << renderText(r);
}

TEST(LintSimt, FlagsRegionExceedingRingCapacity)
{
    // With 16-byte lines and a 2-cluster ring the region below spans
    // 3 I-lines (body 0x1018..simt_e 0x1034): too many to lay a
    // thread pipeline out, though its 8 instructions fit the capacity.
    const std::string src = "    _start:\n"
                            "        li a2, 0\n"
                            "        li a3, 1\n"
                            "        li a4, 8\n" +
                            nops(2) +
                            "    head:\n"
                            "        simt_s a2, a3, a4, 1\n" +
                            nops(7) +
                            "        simt_e a2, a4, head\n"
                            "        ebreak\n";
    LintOptions opt;
    opt.line_bytes = 16;
    opt.clusters_per_ring = 2;
    const LintResult r = lint(src, opt);
    EXPECT_TRUE(has(r, "simt", Severity::Warning, "spans 3 I-lines"))
        << renderText(r);
    // The same region fits a full-size ring.
    const LintResult big = lint(src);
    EXPECT_EQ(countPass(big, "simt"), 0u) << renderText(big);
}

TEST(LintSimt, DisabledSimtSkipsThePass)
{
    LintOptions opt;
    opt.simt_enabled = false;
    const LintResult r = lint(kLoopCarried, opt);
    EXPECT_EQ(countPass(r, "simt"), 0u) << renderText(r);
}

// ---------------------------------------------------------------------
// Pass 4: reuse / cluster-fit diagnostics
// ---------------------------------------------------------------------

TEST(LintReuse, FlagsLoopLargerThanTheRing)
{
    // 16-byte lines, 2 clusters: a 3-line loop cannot stay resident.
    const std::string src = "    _start:\n"
                            "        li t0, 3\n"
                            "    loop:\n" +
                            nops(9) +
                            "        addi t0, t0, -1\n"
                            "        bnez t0, loop\n"
                            "        ebreak\n";
    LintOptions opt;
    opt.line_bytes = 16;
    opt.clusters_per_ring = 2;
    const LintResult r = lint(src, opt);
    EXPECT_TRUE(has(r, "reuse", Severity::Warning,
                    "cannot stay resident"))
        << renderText(r);
    // The same loop fits a 64-byte-line, 32-cluster ring untouched.
    const LintResult big = lint(src);
    EXPECT_EQ(countPass(big, "reuse"), 0u) << renderText(big);
}

TEST(LintReuse, NotesLoopStraddlingALineBoundary)
{
    // 15 filler instructions put the loop head at 0x103c, so its tiny
    // body crosses the 0x1040 line boundary and occupies 2 clusters.
    const std::string src = "    _start:\n"
                            "        li t0, 3\n" +
                            nops(14) +
                            "    loop:\n"
                            "        addi t0, t0, -1\n"
                            "        bnez t0, loop\n"
                            "        ebreak\n";
    const LintResult r = lint(src);
    EXPECT_TRUE(has(r, "reuse", Severity::Note, "straddles an I-line"))
        << renderText(r);
    // One fewer nop keeps the body inside one line: silent.
    const std::string aligned = "    _start:\n"
                                "        li t0, 3\n" +
                                nops(13) +
                                "    loop:\n"
                                "        addi t0, t0, -1\n"
                                "        bnez t0, loop\n"
                                "        ebreak\n";
    const LintResult ok = lint(aligned);
    EXPECT_EQ(countPass(ok, "reuse"), 0u) << renderText(ok);
}

// ---------------------------------------------------------------------
// Emitters
// ---------------------------------------------------------------------

TEST(LintRender, TextAndJsonCarryTheFindings)
{
    const LintResult r = lint(R"(
        _start:
            li t0, 1
            sw t0, 0(t0)
    )");
    const std::string text = renderText(r);
    EXPECT_NE(text.find("error:"), std::string::npos) << text;
    EXPECT_NE(text.find("[cfg]"), std::string::npos) << text;
    const std::string json = renderJson(r);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos) << json;
    EXPECT_NE(json.find("\"pass\": \"cfg\""), std::string::npos)
        << json;
}

// ---------------------------------------------------------------------
// Differential: the static scan is the ring control unit's oracle
// ---------------------------------------------------------------------

namespace
{

/** Every simt_s pc in the emitted image of @p prog. */
std::vector<Addr>
simtStarts(const Program &prog)
{
    std::vector<Addr> pcs;
    for (const ProgramChunk &c : prog.chunks)
        for (Addr pc = c.base; pc + 4 <= c.base + c.size; pc += 4)
            if (isa::decode(prog.word(pc)).op == isa::Op::SIMT_S)
                pcs.push_back(pc);
    return pcs;
}

/** Compare the static scan with Ring::scanSimtRegion at every simt_s. */
unsigned
compareScans(const Program &prog, const std::string &label)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    mem::MemHierarchy mh(cfg.mem, 1);
    mem::Bus bus("lint_diff_bus");
    StatGroup stats("lint_diff");
    core::Ring ring(cfg, 0, mh, bus, stats);

    SparseMemory mem;
    prog.loadInto(mem);
    unsigned regions = 0;
    for (const Addr pc : simtStarts(prog)) {
        ++regions;
        const SimtScan stat = scanSimtRegion(
            pc, mem, cfg.pes_per_cluster * 4, cfg.clustersPerRing());
        const core::Ring::SimtRegion dyn = ring.scanSimtRegion(pc, mem);
        EXPECT_EQ(stat.ok(), dyn.ok)
            << label << " simt_s at 0x" << std::hex << pc << " static "
            << simtScanStatusName(stat.status);
        if (stat.ok() && dyn.ok)
            EXPECT_EQ(stat.simt_e_pc, dyn.simt_e_pc) << label;
    }
    return regions;
}

} // namespace

TEST(LintDifferential, CraftedRegionsAgreeWithTheRing)
{
    EXPECT_EQ(compareScans(assembler::assemble(kLegalSimt), "legal"),
              1u);
    EXPECT_EQ(compareScans(assembler::assemble(kLoopCarried),
                           "loop-carried"),
              1u);
    EXPECT_EQ(compareScans(assembler::assemble(kBackwardBranch),
                           "backward"),
              1u);
}

TEST(LintDifferential, WorkloadRegionsAgreeWithTheRing)
{
    unsigned regions = 0;
    auto sweep = [&](const std::vector<workloads::Workload> &suite) {
        for (const workloads::Workload &w : suite) {
            if (w.asm_simt.empty())
                continue;
            regions += compareScans(assembler::assemble(w.asm_simt),
                                    w.name);
        }
    };
    sweep(workloads::rodiniaSuite());
    sweep(workloads::specSuite());
    EXPECT_GT(regions, 0u);
}

TEST(LintDifferential, AllBundledWorkloadsLintWithoutFindings)
{
    auto sweep = [&](const std::vector<workloads::Workload> &suite) {
        for (const workloads::Workload &w : suite) {
            for (const std::string *src : {&w.asm_serial, &w.asm_simt}) {
                if (src->empty())
                    continue;
                const LintResult r =
                    lint(*src, LintOptions::abiEntry());
                EXPECT_EQ(r.errors(), 0u)
                    << w.name << ":\n" << renderText(r);
                EXPECT_EQ(r.warnings(), 0u)
                    << w.name << ":\n" << renderText(r);
            }
        }
    };
    sweep(workloads::rodiniaSuite());
    sweep(workloads::specSuite());
}
