/**
 * Static performance-bound model tests: block critical paths, region
 * pipeline models (fill / initiation interval / bottleneck), and the
 * simulator cross-validation contract (measured cycles never beat the
 * proven lower bound; predictions track measurements).
 */
#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "diag/config.hpp"
#include "harness/validate.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::analysis;

namespace
{

ProgramAnalysis
analyze(const std::string &src, const LintOptions &opt = {})
{
    return analyzeProgram(assembler::assemble(src), opt);
}

/** A one-line pipelineable region (vector increment with reuse). */
const char *kVectorAdd = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 256
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        lw t6, 0(t5)
        addi t6, t6, 1
        sw t6, 0(t5)
        simt_e a2, a4, head
        ebreak
)";

} // namespace

TEST(Bound, DependentChainBoundsBlockCriticalPath)
{
    // Eight serially dependent adds: the lane critical path cannot be
    // shorter than the chain itself.
    const ProgramAnalysis a = analyze(R"(
        _start:
            li t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            addi t0, t0, 1
            sw t0, 0(t0)
            ebreak
    )");
    ASSERT_FALSE(a.bound.blocks.empty());
    EXPECT_GE(a.bound.blocks[0].crit_lb, 8u);
}

TEST(Bound, RegionModelHasSaneShape)
{
    const ProgramAnalysis a = analyze(kVectorAdd);
    ASSERT_EQ(a.bound.regions.size(), 1u);
    const RegionBound &r = a.bound.regions[0];
    EXPECT_EQ(r.lines, 1u);
    EXPECT_TRUE(r.straightline);
    EXPECT_EQ(r.interval, 1u);
    EXPECT_GE(r.fill_lb, 1u);
    EXPECT_GE(r.ii_lb, 1.0);
    // The prediction uses expected (>= minimum) latencies, so it can
    // never undercut the proven bound.
    const double threads = 64;
    const double entries = 1;
    EXPECT_GE(r.predict(threads, entries),
              r.lowerBound(threads, entries));
    // More threads can only cost more cycles.
    EXPECT_GE(r.lowerBound(2 * threads, entries),
              r.lowerBound(threads, entries));
}

TEST(Bound, ResourceNoteWhenDivideLimitsThroughput)
{
    // On a small ring (4 clusters) the 12-cycle unpipelined divide
    // cannot be replicated away: 12 / 4 replicas > interval 1.
    LintOptions opt;
    opt.clusters_per_ring = 4;
    const ProgramAnalysis a = analyze(R"(
        _start:
            li s2, 0x100000
            li a2, 0
            li a3, 4
            li a4, 64
        head:
            simt_s a2, a3, a4, 1
            add t5, s2, a2
            lw t6, 0(t5)
            div t6, t6, t6
            sw t6, 0(t5)
            simt_e a2, a4, head
            ebreak
    )",
                                      opt);
    ASSERT_EQ(a.bound.regions.size(), 1u);
    EXPECT_GT(a.bound.regions[0].unpip_ii, 1.0);
    bool note = false;
    for (const Diagnostic &d : a.lint.diags)
        note |= d.pass == "bound" &&
                d.message.find("resource-bound") != std::string::npos;
    EXPECT_TRUE(note) << renderText(a.lint);
}

TEST(Bound, ValidationHoldsOnSmallWorkloads)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    for (const char *name : {"particlefilter", "nn"}) {
        const workloads::Workload w = workloads::findWorkload(name);
        const harness::ValidationReport rep =
            harness::validateBound(cfg, w, /*use_simt=*/true);
        EXPECT_TRUE(rep.ok()) << harness::renderValidation(rep);
        EXPECT_GE(rep.measured_cycles, rep.program_lower_bound);
        for (const auto &c : rep.regions) {
            if (c.entries <= 0)
                continue;
            EXPECT_GE(c.measured, c.lower_bound) << name;
            EXPECT_LE(c.err, 0.15) << name;
        }
    }
}

TEST(Bound, ValidationJsonRoundTripsVerdict)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    const workloads::Workload w = workloads::findWorkload("nn");
    const harness::ValidationReport rep =
        harness::validateBound(cfg, w, /*use_simt=*/true);
    const std::string js = harness::renderValidationJson(rep);
    EXPECT_NE(js.find("\"ok\": true"), std::string::npos) << js;
    EXPECT_NE(js.find("\"bottleneck\""), std::string::npos) << js;
}
