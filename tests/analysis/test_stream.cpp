/**
 * Stream analyzer tests: the classification lattice (affine with a
 * proven stride, indirect through an affine index load, loop-carried
 * pointer-chase, opaque-base unknown), the provable L1D bank verdicts
 * (conflict-free vs single-bank serialized), footprint/reuse
 * estimates, and the trace-differential validation contract — every
 * proven-affine verdict must match the simulator's recorded
 * addresses, recording must not change any cycle, and the fan-out
 * sweep must render byte-identically for any job count.
 */
#include <gtest/gtest.h>

#include <string>

#include "analysis/lint.hpp"
#include "analysis/stream.hpp"
#include "asm/assembler.hpp"
#include "harness/runner.hpp"
#include "harness/validate_stream.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::analysis;

namespace
{

StreamResult
analyze(const std::string &src, LintResult &report,
        const LintOptions &opt = {})
{
    return analyzeStreams(assembler::assemble(src), opt, report);
}

bool
has(const LintResult &r, Severity sev, const std::string &needle)
{
    for (const Diagnostic &d : r.diags) {
        if (d.pass == "stream" && d.severity == sev &&
            d.message.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

const StreamInfo *
findStream(const RegionStreams &rs, StreamKind kind)
{
    for (const StreamInfo &s : rs.streams)
        if (s.kind == kind)
            return &s;
    return nullptr;
}

/** Unit-stride region: each thread loads and stores its own word. */
const char *kAffine = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        lw t4, 0(t5)
        addi t4, t4, 1
        sw t4, 0(t5)
        simt_e a2, a4, head
        ebreak
)";

/** Stride 32 with 4 word-interleaved banks: every access of the
 *  stream lands on one bank (32/8 = 4 words = the bank count). */
const char *kBankSerialized = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 32
        li a4, 512
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        lw t4, 0(t5)
        simt_e a2, a4, head
        ebreak
)";

/** Gather: an affine index load feeds the address of a second load. */
const char *kIndirect = R"(
    _start:
        li s2, 0x100000
        li s3, 0x200000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t0, s2, a2
        lw t1, 0(t0)
        slli t2, t1, 2
        add t2, s3, t2
        lw t3, 0(t2)
        simt_e a2, a4, head
        ebreak
)";

/** Serial linked-list walk: the loaded value is the next address. */
const char *kPointerChase = R"(
    _start:
        li a0, 0x100000
        li t1, 16
    loop:
        lw a0, 0(a0)
        addi t1, t1, -1
        bne t1, x0, loop
        ebreak
)";

/** Serial loop with constant-offset induction: the canonical affine
 *  loop stream (stride = the addi delta per iteration). */
const char *kAffineLoop = R"(
    _start:
        li s2, 0x100000
        li t1, 16
    loop:
        lw t3, 0(s2)
        addi s2, s2, 4
        addi t1, t1, -1
        bne t1, x0, loop
        ebreak
)";

/** Register-stride loop: s2 advances by a *register* (loaded, so not
 *  constant-foldable) each iteration. The address changes every
 *  iteration, but outside the induction algebra — it must NOT come
 *  out as loop-invariant Affine with stride 0. */
const char *kRegStrideLoop = R"(
    _start:
        li s2, 0x100000
        lw t2, 0(s2)
        li t1, 16
    loop:
        lw t3, 0(s2)
        add s2, s2, t2
        addi t1, t1, -1
        bne t1, x0, loop
        ebreak
)";

/** Rescaling loop: s2 doubles each iteration (`slli s2, s2, 1`) —
 *  again varying per iteration without being induction or chase. */
const char *kShiftStrideLoop = R"(
    _start:
        li s2, 0x100000
        li t1, 8
    loop:
        lw t3, 0(s2)
        slli s2, s2, 1
        addi t1, t1, -1
        bne t1, x0, loop
        ebreak
)";

/** An address combining a chase pointer with another register whose
 *  seed term chain-roots the combination (t0 < a0 in term order):
 *  the load through t4 varies with the chase and must not be
 *  classified loop-invariant Affine. */
const char *kChaseOffsetLoop = R"(
    _start:
        li a0, 0x100000
        li t0, 64
        li t1, 16
    loop:
        add t4, t0, a0
        lw t5, 0(t4)
        lw a0, 0(a0)
        addi t1, t1, -1
        bne t1, x0, loop
        ebreak
)";

/** The address is minted in-region by a multiply: outside the
 *  value numbering's affine algebra, so it must stay unclassified. */
const char *kUnknown = R"(
    _start:
        li s2, 0x100000
        li s3, 3
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        mul t0, a2, s3
        add t0, s2, t0
        lw t1, 0(t0)
        simt_e a2, a4, head
        ebreak
)";

} // namespace

TEST(Stream, AffineUnitStrideIsProvenAndConflictFree)
{
    LintResult rep;
    const StreamResult sr = analyze(kAffine, rep);
    ASSERT_EQ(sr.regions.size(), 1u);
    const RegionStreams &rs = sr.regions[0];
    EXPECT_TRUE(rs.straightline);
    ASSERT_TRUE(rs.step_known);
    EXPECT_EQ(rs.step, 4);
    ASSERT_TRUE(rs.trips_known);
    EXPECT_EQ(rs.trips, 16u);
    EXPECT_EQ(rs.affine, 2u);  // the load and the store
    EXPECT_EQ(rs.indirect + rs.chase + rs.unknown, 0u);
    for (const StreamInfo &s : rs.streams) {
        ASSERT_TRUE(s.stride_known);
        EXPECT_EQ(s.stride, 4);
        EXPECT_EQ(s.prefetch, PrefetchClass::Stride);
        EXPECT_TRUE(s.bank_conflict_free);
        EXPECT_FALSE(s.bank_serialized);
        ASSERT_TRUE(s.footprint_known);
        EXPECT_EQ(s.footprint_bytes, 64u);  // 16 trips * stride 4
    }
    EXPECT_FALSE(has(rep, Severity::Warning, "single"));
}

TEST(Stream, SerializedStrideLandsOnOneBankAndWarns)
{
    LintResult rep;
    const StreamResult sr = analyze(kBankSerialized, rep);
    ASSERT_EQ(sr.regions.size(), 1u);
    const StreamInfo *s =
        findStream(sr.regions[0], StreamKind::Affine);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(s->stride_known);
    EXPECT_EQ(s->stride, 32);
    EXPECT_TRUE(s->bank_serialized);
    EXPECT_FALSE(s->bank_conflict_free);
    EXPECT_TRUE(has(rep, Severity::Warning,
                    "lands every access on a single"));
}

TEST(Stream, GatherThroughAffineIndexIsIndirect)
{
    LintResult rep;
    const StreamResult sr = analyze(kIndirect, rep);
    ASSERT_EQ(sr.regions.size(), 1u);
    const RegionStreams &rs = sr.regions[0];
    EXPECT_EQ(rs.affine, 1u);
    EXPECT_EQ(rs.indirect, 1u);
    const StreamInfo *index =
        findStream(rs, StreamKind::Affine);
    const StreamInfo *gather =
        findStream(rs, StreamKind::Indirect);
    ASSERT_NE(index, nullptr);
    ASSERT_NE(gather, nullptr);
    EXPECT_EQ(gather->feeder_pc, index->pc);
    EXPECT_EQ(gather->prefetch, PrefetchClass::Index);
    EXPECT_TRUE(has(rep, Severity::Note, "indirect stream: gather"));
}

TEST(Stream, LinkedListWalkIsPointerChase)
{
    LintResult rep;
    const StreamResult sr = analyze(kPointerChase, rep);
    ASSERT_EQ(sr.loops.size(), 1u);
    ASSERT_EQ(sr.loops[0].streams.size(), 1u);
    const StreamInfo &s = sr.loops[0].streams[0];
    EXPECT_EQ(s.kind, StreamKind::PointerChase);
    EXPECT_EQ(s.prefetch, PrefetchClass::None);
    EXPECT_TRUE(has(rep, Severity::Note, "pointer-chase stream"));
}

TEST(Stream, InductionLoopIsAffineWithByteStride)
{
    LintResult rep;
    const StreamResult sr = analyze(kAffineLoop, rep);
    ASSERT_EQ(sr.loops.size(), 1u);
    ASSERT_EQ(sr.loops[0].streams.size(), 1u);
    const StreamInfo &s = sr.loops[0].streams[0];
    EXPECT_EQ(s.kind, StreamKind::Affine);
    ASSERT_TRUE(s.stride_known);
    EXPECT_EQ(s.stride, 4);
    EXPECT_EQ(s.prefetch, PrefetchClass::Stride);
}

TEST(Stream, RegisterStrideLoopIsNotFalselyAffine)
{
    // Regression: a register whose per-iteration update is neither
    // `addi r,r,imm` induction nor a self-rooted chase used to fall
    // through pass 1 silently and classify as loop-invariant Affine
    // with a "proven" stride of 0 — an unsound verdict.
    LintResult rep;
    const StreamResult sr = analyze(kRegStrideLoop, rep);
    ASSERT_EQ(sr.loops.size(), 1u);
    ASSERT_EQ(sr.loops[0].streams.size(), 1u);
    const StreamInfo &s = sr.loops[0].streams[0];
    EXPECT_EQ(s.kind, StreamKind::Unknown);
    EXPECT_EQ(s.prefetch, PrefetchClass::None);
    EXPECT_FALSE(s.bank_conflict_free);
}

TEST(Stream, ShiftRescaledLoopBaseIsNotFalselyAffine)
{
    LintResult rep;
    const StreamResult sr = analyze(kShiftStrideLoop, rep);
    ASSERT_EQ(sr.loops.size(), 1u);
    ASSERT_EQ(sr.loops[0].streams.size(), 1u);
    const StreamInfo &s = sr.loops[0].streams[0];
    EXPECT_EQ(s.kind, StreamKind::Unknown);
    EXPECT_FALSE(s.bank_conflict_free);
}

TEST(Stream, ChaseCombinedAddressIsNotFalselyAffine)
{
    // The `t0 + a0` sum chain-roots in t0's seed, so the chase check
    // alone would miss it; the poisoned non-invariant chase seed must
    // keep the derived access out of Affine.
    LintResult rep;
    const StreamResult sr = analyze(kChaseOffsetLoop, rep);
    ASSERT_EQ(sr.loops.size(), 1u);
    ASSERT_EQ(sr.loops[0].streams.size(), 2u);
    for (const StreamInfo &s : sr.loops[0].streams)
        EXPECT_NE(s.kind, StreamKind::Affine) << "pc " << s.pc;
}

TEST(Stream, MultiplyMintedBaseStaysUnknown)
{
    LintResult rep;
    const StreamResult sr = analyze(kUnknown, rep);
    ASSERT_EQ(sr.regions.size(), 1u);
    EXPECT_EQ(sr.regions[0].unknown, 1u);
    EXPECT_EQ(sr.regions[0].affine, 0u);
    EXPECT_TRUE(has(rep, Severity::Note, "unclassified"));
}

TEST(StreamValidate, EveryWorkloadAffineVerdictMatchesTrace)
{
    // The acceptance bar of the analyzer: across every bundled simt
    // kernel, zero proven-affine streams may deviate from the
    // simulator's recorded addresses (no false affine), and every
    // proven conflict-free stream must record zero conflicts.
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    auto all = workloads::rodiniaSuite();
    for (auto &w : workloads::specSuite())
        all.push_back(w);
    unsigned validated = 0;
    for (const auto &w : all) {
        if (w.asm_simt.empty())
            continue;
        const harness::StreamValidation rep =
            harness::validateStream(cfg, w);
        EXPECT_TRUE(rep.ok()) << harness::renderStreamValidation(rep);
        for (const auto &c : rep.regions) {
            EXPECT_EQ(c.affine_ok, c.affine_streams)
                << w.name << " region " << c.pc;
            EXPECT_EQ(c.bank_ok, c.bank_streams)
                << w.name << " region " << c.pc;
        }
        ++validated;
    }
    EXPECT_GT(validated, 0u);
}

TEST(StreamValidate, EveryWorkloadLoopVerdictMatchesTrace)
{
    // The serial-loop half of the safety net: loop-scope affine and
    // bank verdicts come from the weakest part of the classifier, so
    // they too must replay exactly against the recorded serial
    // address sequences (segmented into loop entries at the loop's
    // taken backward branch).
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    auto all = workloads::rodiniaSuite();
    for (auto &w : workloads::specSuite())
        all.push_back(w);
    u64 replayed_iters = 0;
    unsigned affine_checked = 0;
    for (const auto &w : all) {
        if (w.asm_simt.empty())
            continue;
        const harness::StreamValidation rep =
            harness::validateStream(cfg, w);
        EXPECT_TRUE(rep.ok()) << harness::renderStreamValidation(rep);
        for (const auto &c : rep.loops) {
            EXPECT_EQ(c.affine_ok, c.affine_streams)
                << w.name << " loop " << c.head;
            EXPECT_EQ(c.bank_ok, c.bank_streams)
                << w.name << " loop " << c.head;
            replayed_iters += c.iterations;
            affine_checked += c.affine_streams;
        }
    }
    // The check must actually bite: serial loops run, are recorded,
    // and proven-affine loop verdicts replay against real iterations.
    EXPECT_GT(replayed_iters, 0u);
    EXPECT_GT(affine_checked, 0u);
}

TEST(StreamValidate, RecordingNeverChangesACycle)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    const workloads::Workload w = workloads::findWorkload("imagick");
    harness::RunSpec plain;
    plain.use_simt = true;
    harness::RunSpec recorded = plain;
    recorded.record_addrs = true;
    const harness::EngineRun a = harness::runOnDiag(cfg, w, plain);
    const harness::EngineRun b = harness::runOnDiag(cfg, w, recorded);
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
    ASSERT_NE(b.addrs, nullptr);
    EXPECT_FALSE(b.addrs->regions.empty());
}

TEST(StreamValidate, SweepRendersByteIdenticalForAnyJobCount)
{
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    const auto suite = workloads::rodiniaSuite();
    std::vector<harness::StreamCell> cells;
    for (const auto &w : suite) {
        if (!w.asm_simt.empty() && cells.size() < 3)
            cells.push_back({cfg, &w});
    }
    ASSERT_GE(cells.size(), 2u);
    const auto one = harness::validateStreamMany(cells, 1);
    const auto four = harness::validateStreamMany(cells, 4);
    ASSERT_EQ(one.size(), four.size());
    for (size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(harness::renderStreamValidation(one[i]),
                  harness::renderStreamValidation(four[i]));
        EXPECT_EQ(harness::renderStreamValidationJson(one[i]),
                  harness::renderStreamValidationJson(four[i]));
    }
}
