/**
 * diag-verify tests: the abstract domain's algebra, then one fixture
 * per verifier diagnostic kind that triggers it and one that stays
 * silent (mirroring test_lint.cpp), the strict-mode processor gate,
 * and the bundled workloads verifying clean against their declared
 * data maps.
 */
#include <gtest/gtest.h>

#include <string>

#include "analysis/absint.hpp"
#include "analysis/verify.hpp"
#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::analysis;

namespace
{

VerifyResult
verify(const std::string &src, const VerifyOptions &opt = {})
{
    return verifyProgram(assembler::assemble(src), opt);
}

Verdict
propOf(const VerifyResult &r, PropertyKind k)
{
    return r.prop(k).verdict;
}

/** Options granting the fixture a [0x100000, 0x100100) data window. */
VerifyOptions
withDataWindow()
{
    VerifyOptions opt;
    opt.extra_ranges.emplace_back(0x100000u, 0x100u);
    return opt;
}

} // namespace

// ---------------------------------------------------------------------
// The abstract domain: interval x known-bits algebra.
// ---------------------------------------------------------------------

TEST(AbsVal, ConstantsExcludeEverythingElse)
{
    const AbsVal c = AbsVal::constant(5);
    EXPECT_TRUE(c.isConst());
    EXPECT_EQ(c.constVal(), 5u);
    EXPECT_FALSE(c.excludes(5));
    EXPECT_TRUE(c.excludes(4));
    EXPECT_TRUE(c.excludes(0));
}

TEST(AbsVal, IntervalExcludesOutOfRange)
{
    const AbsVal v = AbsVal::interval(4, 10);
    EXPECT_FALSE(v.excludes(4));
    EXPECT_FALSE(v.excludes(10));
    EXPECT_TRUE(v.excludes(3));
    EXPECT_TRUE(v.excludes(11));
}

TEST(AbsVal, ArithmeticOnConstantsIsExact)
{
    EXPECT_TRUE(absAdd(AbsVal::constant(3), AbsVal::constant(4)) ==
                AbsVal::constant(7));
    EXPECT_TRUE(absSub(AbsVal::constant(10), AbsVal::constant(3)) ==
                AbsVal::constant(7));
    EXPECT_TRUE(absMul(AbsVal::constant(6), AbsVal::constant(7)) ==
                AbsVal::constant(42));
    // Modular wrap stays exact: 0xffffffff + 2 == 1 (mod 2^32).
    EXPECT_TRUE(absAdd(AbsVal::constant(0xffffffffu),
                       AbsVal::constant(2)) == AbsVal::constant(1));
}

TEST(AbsVal, AddShiftsIntervals)
{
    const AbsVal v =
        absAdd(AbsVal::interval(0, 10), AbsVal::constant(4));
    EXPECT_EQ(v.lo, 4u);
    EXPECT_EQ(v.hi, 14u);
}

TEST(AbsVal, AndWithMaskBoundsTheResult)
{
    const AbsVal v = absAnd(AbsVal::top(), AbsVal::constant(0xff));
    EXPECT_LE(v.hi, 0xffu);
    EXPECT_EQ(v.lo, 0u);
}

TEST(AbsVal, ShiftLeftKnowsLowZeroBits)
{
    // x << 3 has its low three bits provably zero: alignment facts.
    const AbsVal v = absShl(AbsVal::top(), 3);
    EXPECT_EQ(v.remainder(8), 0);
    const AbsVal u = absMul(AbsVal::constant(8), AbsVal::top());
    EXPECT_EQ(u.remainder(8), 0);
}

TEST(AbsVal, JoinKeepsCommonKnownBits)
{
    AbsVal a = AbsVal::constant(4);
    a.join(AbsVal::constant(6));
    EXPECT_EQ(a.lo, 4u);
    EXPECT_EQ(a.hi, 6u);
    // 0b100 and 0b110 agree on bit 0: both even.
    EXPECT_EQ(a.remainder(2), 0);
}

TEST(AbsVal, WideningJumpsToTheExtremes)
{
    // A growing bound must not creep one step per join: widening
    // jumps it straight to the largest value the surviving known
    // bits allow. [0,10] and [0,12] both know bits 4..31 are zero,
    // so the widened interval is [0,15], not [0,12], [0,13], ...
    AbsVal a = AbsVal::interval(0, 10);
    a.widen(AbsVal::interval(0, 12));
    EXPECT_EQ(a.hi, 15u);
    // Without agreeing high known-zero bits the jump is unbounded.
    AbsVal b = AbsVal::interval(0, 10);
    b.widen(AbsVal::interval(0, 0x80000000u));
    EXPECT_EQ(b.hi, 0xffffffffu);
}

TEST(AbsVal, MeetCanReachBottom)
{
    AbsVal a = AbsVal::constant(4);
    a.meet(AbsVal::constant(5));
    EXPECT_TRUE(a.isBottom());
    EXPECT_TRUE(a.excludes(4));
}

// ---------------------------------------------------------------------
// Divide-by-zero: trigger and silence.
// ---------------------------------------------------------------------

namespace
{

const char *kDivByZero = R"(
    _start:
        li t0, 5
        li t1, 0
        div t2, t0, t1
        ebreak
)";

const char *kDivByConst = R"(
    _start:
        li t0, 5
        li t1, 3
        div t2, t0, t1
        ebreak
)";

} // namespace

TEST(VerifyDiv, ConstantZeroDivisorIsRefuted)
{
    const VerifyResult r = verify(kDivByZero);
    EXPECT_EQ(propOf(r, PropertyKind::NoDivByZero), Verdict::Refuted);
    EXPECT_FALSE(r.clean());
    EXPECT_GT(r.report.errors(), 0u);
}

TEST(VerifyDiv, NonzeroConstantDivisorIsProven)
{
    const VerifyResult r = verify(kDivByConst);
    EXPECT_EQ(propOf(r, PropertyKind::NoDivByZero), Verdict::Proven);
    EXPECT_TRUE(r.clean());
}

// ---------------------------------------------------------------------
// Alignment: trigger and silence.
// ---------------------------------------------------------------------

namespace
{

const char *kMisalignedLoad = R"(
    _start:
        li t0, 0x100002
        lw t1, 0(t0)
        ebreak
)";

const char *kAlignedAccesses = R"(
    _start:
        li t0, 0x100000
        li t1, 7
        sw t1, 0(t0)
        lw t2, 4(t0)
        ebreak
)";

} // namespace

TEST(VerifyAlign, ConstantMisalignedWordLoadIsRefuted)
{
    const VerifyResult r = verify(kMisalignedLoad, withDataWindow());
    EXPECT_EQ(propOf(r, PropertyKind::NoMisaligned),
              Verdict::Refuted);
    EXPECT_FALSE(r.clean());
}

TEST(VerifyAlign, AlignedAccessesAreProven)
{
    const VerifyResult r = verify(kAlignedAccesses, withDataWindow());
    EXPECT_EQ(propOf(r, PropertyKind::NoMisaligned), Verdict::Proven);
    EXPECT_TRUE(r.clean());
}

// ---------------------------------------------------------------------
// Bounds against the declared data map: trigger and silence.
// ---------------------------------------------------------------------

TEST(VerifyBounds, AccessOutsideEveryChunkIsRefuted)
{
    // Same program, but no extra range declared: 0x100000 is outside
    // the program image, so the store provably leaves the data map.
    const VerifyResult r = verify(kAlignedAccesses);
    EXPECT_EQ(propOf(r, PropertyKind::NoOutOfBounds),
              Verdict::Refuted);
    EXPECT_FALSE(r.clean());
}

TEST(VerifyBounds, DeclaredRangeDischargesTheAccess)
{
    const VerifyResult r = verify(kAlignedAccesses, withDataWindow());
    EXPECT_EQ(propOf(r, PropertyKind::NoOutOfBounds),
              Verdict::Proven);
    EXPECT_TRUE(r.clean());
}

TEST(VerifyBounds, DataSectionChunkCountsAsInBounds)
{
    // A .data section emits a real chunk at the data base; accesses
    // into it verify in-bounds with no extra declaration.
    const VerifyResult r = verify(R"(
        .data
        .space 64
        .text
    _start:
        li t0, 0x100000
        sw zero, 0(t0)
        ebreak
)");
    EXPECT_EQ(propOf(r, PropertyKind::NoOutOfBounds),
              Verdict::Proven);
}

// ---------------------------------------------------------------------
// Cross-thread races in simt regions: proven, refuted, carried.
// ---------------------------------------------------------------------

namespace
{

/** Disjoint per-thread slots: thread i owns [base+8i, base+8i+8). */
const char *kDisjointRegion = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 8
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        li t6, 7
        sw t6, 0(t5)
        lw t4, 0(t5)
        sw t4, 4(t5)
        simt_e a2, a4, head
        ebreak
)";

/** Thread i loads the cell thread i+1 stores: a definite RAW race. */
const char *kNextSliceRace = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 8
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        li t6, 7
        sw t6, 0(t5)
        addi t4, a2, 8
        add t4, t4, s2
        lw t3, 0(t4)
        simt_e a2, a4, head
        ebreak
)";

/** Every thread reads and writes one fixed address. */
const char *kCarriedRace = R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 4
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        lw t0, 0(s2)
        addi t0, t0, 1
        sw t0, 0(s2)
        simt_e a2, a4, head
        ebreak
)";

} // namespace

TEST(VerifyRace, DisjointSlotsAreProvenRaceFree)
{
    const VerifyResult r = verify(kDisjointRegion, withDataWindow());
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].race, Verdict::Proven);
    EXPECT_TRUE(r.clean());
}

TEST(VerifyRace, NextSliceLoadIsRefuted)
{
    const VerifyResult r = verify(kNextSliceRace, withDataWindow());
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].race, Verdict::Refuted);
    EXPECT_FALSE(r.clean());
}

TEST(VerifyRace, CarriedFixedAddressRaceIsRefuted)
{
    const VerifyResult r = verify(kCarriedRace, withDataWindow());
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].race, Verdict::Refuted);
    EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------
// Deadlock freedom / token conservation: proven count and livelock.
// ---------------------------------------------------------------------

TEST(VerifyDeadlock, ResolvedRegionProvesItsThreadCount)
{
    const VerifyResult r = verify(kDisjointRegion, withDataWindow());
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].deadlock, Verdict::Proven);
    EXPECT_EQ(r.regions[0].threads, 8u);  // 64 / 8
    EXPECT_GT(r.regions[0].capacity, 0u);
    EXPECT_LE(r.regions[0].inflight_bound, r.regions[0].capacity);
}

TEST(VerifyDeadlock, ZeroStepLivelockIsRefuted)
{
    const VerifyResult r = verify(R"(
    _start:
        li s2, 0x100000
        li a2, 0
        li a3, 0
        li a4, 64
    head:
        simt_s a2, a3, a4, 1
        add t5, s2, a2
        sw zero, 0(t5)
        simt_e a2, a4, head
        ebreak
)",
                                  withDataWindow());
    ASSERT_EQ(r.regions.size(), 1u);
    EXPECT_EQ(r.regions[0].deadlock, Verdict::Refuted);
    EXPECT_FALSE(r.clean());
}

// ---------------------------------------------------------------------
// Renderers carry the verdicts.
// ---------------------------------------------------------------------

TEST(VerifyRender, TextAndJsonNameEveryProperty)
{
    const VerifyResult r = verify(kDivByZero);
    const std::string text = renderVerifyText(r);
    const std::string json = renderVerifyJson(r);
    for (const char *name :
         {"control-safe", "no-div-by-zero", "no-misaligned",
          "no-out-of-bounds"}) {
        EXPECT_NE(text.find(name), std::string::npos) << name;
        EXPECT_NE(json.find(name), std::string::npos) << name;
    }
    EXPECT_NE(text.find("refuted"), std::string::npos);
}

// ---------------------------------------------------------------------
// Strict-mode wiring: DiagConfig::verify_enabled gates the run.
// ---------------------------------------------------------------------

TEST(VerifyStrict, ProcessorRejectsProvenViolation)
{
    core::DiagConfig cfg = core::DiagConfig::f4c2();
    cfg.lint_enabled = false;  // let the verifier be the gate
    cfg.verify_enabled = true;
    const Program prog = assembler::assemble(kDivByZero);
    core::DiagProcessor proc(cfg);
    EXPECT_EXIT(proc.run(prog, 1000),
                ::testing::ExitedWithCode(1),
                "rejected by the verifier");
}

TEST(VerifyStrict, ProcessorAcceptsCleanProgram)
{
    core::DiagConfig cfg = core::DiagConfig::f4c2();
    cfg.verify_enabled = true;
    const Program prog = assembler::assemble(R"(
        .data
        .space 16
        .text
    _start:
        li t0, 0x100000
        li t1, 6
        li t2, 7
        add t3, t1, t2
        sw t3, 0(t0)
        ebreak
)");
    core::DiagProcessor proc(cfg);
    const sim::RunStats rs = proc.run(prog, 1000);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 28), 13u);  // t3
}

// ---------------------------------------------------------------------
// Every bundled workload verifies clean against its declared data map.
// ---------------------------------------------------------------------

namespace
{

void
expectWorkloadClean(const workloads::Workload &w)
{
    VerifyOptions opt;
    opt.lint = LintOptions::abiEntry();
    opt.extra_ranges = w.data_ranges;
    for (const std::string *src : {&w.asm_serial, &w.asm_simt}) {
        if (src->empty())
            continue;
        const VerifyResult r = verifyProgram(
            assembler::assemble(*src), opt);
        EXPECT_TRUE(r.clean())
            << w.name << (src == &w.asm_serial ? " (serial)"
                                               : " (simt)")
            << ":\n"
            << renderVerifyText(r);
    }
}

} // namespace

TEST(VerifyWorkloads, RodiniaSuiteVerifiesClean)
{
    for (const auto &w : workloads::rodiniaSuite())
        expectWorkloadClean(w);
}

TEST(VerifyWorkloads, SpecSuiteVerifiesClean)
{
    for (const auto &w : workloads::specSuite())
        expectWorkloadClean(w);
}
