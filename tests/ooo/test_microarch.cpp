/** OoO microarchitecture sensitivity tests: structural windows, FU
 *  pools, wakeup delay, and store-to-load forwarding behaviour. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "ooo/processor.hpp"

using namespace diag;
using namespace diag::ooo;

namespace
{

sim::RunStats
runOn(const OooConfig &cfg, const std::string &src)
{
    OooProcessor proc(cfg);
    return proc.run(assembler::assemble(src));
}

/** Independent-iteration loop: 16 parallel chains per iteration. */
std::string
ilpLoop()
{
    std::string src = "_start:\n    li x31, 512\nloop:\n";
    for (int r = 5; r < 21; ++r)
        src += "    addi x" + std::to_string(r) + ", x" +
               std::to_string(r) + ", 1\n";
    src += "    addi x31, x31, -1\n    bnez x31, loop\n    ebreak\n";
    return src;
}

} // namespace

TEST(OooMicroarch, SmallerRobIsSlower)
{
    OooConfig big = OooConfig::baseline8();
    OooConfig small = OooConfig::baseline8();
    small.rob_entries = 16;
    const sim::RunStats b = runOn(big, ilpLoop());
    const sim::RunStats s = runOn(small, ilpLoop());
    EXPECT_LT(b.cycles, s.cycles);
}

TEST(OooMicroarch, SmallerIqIsSlower)
{
    // A long-latency producer parks dependents in the IQ; a tiny IQ
    // blocks dispatch of younger independent work.
    std::string src = "_start:\n    li x31, 256\n    li x5, 1000\n"
                      "    li x6, 7\nloop:\n"
                      "    div x7, x5, x6\n"
                      "    add x8, x7, x7\n";
    for (int r = 10; r < 24; ++r)
        src += "    addi x" + std::to_string(r) + ", x" +
               std::to_string(r) + ", 1\n";
    src += "    addi x31, x31, -1\n    bnez x31, loop\n    ebreak\n";
    OooConfig big = OooConfig::baseline8();
    OooConfig small = OooConfig::baseline8();
    small.iq_entries = 4;
    const sim::RunStats b = runOn(big, src);
    const sim::RunStats s = runOn(small, src);
    EXPECT_LT(b.cycles, s.cycles);
}

TEST(OooMicroarch, NarrowWidthIsSlower)
{
    OooConfig wide = OooConfig::baseline8();
    OooConfig narrow = OooConfig::baseline8();
    narrow.width = 2;
    const sim::RunStats w = runOn(wide, ilpLoop());
    const sim::RunStats n = runOn(narrow, ilpLoop());
    EXPECT_LT(w.cycles, n.cycles);
    // 16+2 instructions per iteration at width 2 needs >= 9 cy/iter.
    EXPECT_GT(n.cycles, 512u * 8);
}

TEST(OooMicroarch, FewerAluUnitsAreSlower)
{
    OooConfig many = OooConfig::baseline8();
    OooConfig few = OooConfig::baseline8();
    few.alu_units = 1;
    const sim::RunStats m = runOn(many, ilpLoop());
    const sim::RunStats f = runOn(few, ilpLoop());
    // 16 independent adds per iteration on one ALU: >= 16 cy/iter.
    EXPECT_LT(m.cycles, f.cycles);
    EXPECT_GT(f.cycles, 512u * 15);
}

TEST(OooMicroarch, WakeupDelaySlowsDependentChains)
{
    // A pure dependent chain is paced by exec latency + wakeup delay.
    std::string src = "_start:\n    li x31, 1024\nloop:\n"
                      "    addi x5, x5, 1\n"
                      "    addi x5, x5, 1\n"
                      "    addi x5, x5, 1\n"
                      "    addi x5, x5, 1\n"
                      "    addi x31, x31, -1\n    bnez x31, loop\n"
                      "    ebreak\n";
    OooConfig fast = OooConfig::baseline8();
    fast.wakeup_delay = 0;
    OooConfig slow = OooConfig::baseline8();
    slow.wakeup_delay = 2;
    const sim::RunStats f = runOn(fast, src);
    const sim::RunStats s = runOn(slow, src);
    // Chain length 4 x 1024: each extra wakeup cycle adds ~2 cycles
    // per chain hop beyond the faster configuration.
    EXPECT_GT(s.cycles, f.cycles + 4000);
}

TEST(OooMicroarch, UnpipelinedDividerSerializes)
{
    // Back-to-back independent divides throttle on the single
    // unpipelined divider (occupancy = latency).
    std::string src = "_start:\n    li x31, 256\n    li x5, 1000\n"
                      "    li x6, 7\nloop:\n"
                      "    div x7, x5, x6\n"
                      "    div x8, x5, x6\n"
                      "    addi x31, x31, -1\n    bnez x31, loop\n"
                      "    ebreak\n";
    const sim::RunStats rs = runOn(OooConfig::baseline8(), src);
    // 512 divides x 12-cycle occupancy on one unit.
    EXPECT_GT(rs.cycles, 512u * 11);
}

TEST(OooMicroarch, StoreToLoadForwardingBeatsCacheRoundTrip)
{
    // A store immediately re-read forwards from the store buffer.
    const char *fwd = R"(
        .data
        buf: .space 64
        .text
        _start:
            la t0, buf
            li t1, 0
            li t2, 2048
        loop:
            sw t1, 0(t0)
            lw t3, 0(t0)
            add t4, t4, t3
            addi t1, t1, 1
            bne t1, t2, loop
            ebreak
    )";
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(assembler::assemble(fwd));
    EXPECT_TRUE(rs.halted);
    EXPECT_GT(rs.counters.get("stl_forwards"), 2000.0);
}

TEST(OooMicroarch, MispredictPenaltyScalesWithConfig)
{
    // Data-dependent unpredictable branches: doubling the penalty
    // must cost roughly (extra_penalty x mispredicts) cycles.
    std::string src = R"(
        _start:
            li t0, 0
            li t1, 4096
            li t3, 1103515245
            li t4, 0x10001
        loop:
            mul t4, t4, t3
            addi t4, t4, 1013
            srli t5, t4, 16
            andi t5, t5, 1
            beqz t5, skip
            addi t2, t2, 1
        skip:
            addi t0, t0, 1
            bne t0, t1, loop
            ebreak
    )";
    OooConfig cheap = OooConfig::baseline8();
    cheap.mispredict_penalty = 2;
    OooConfig costly = OooConfig::baseline8();
    costly.mispredict_penalty = 20;
    const sim::RunStats a = runOn(cheap, src);
    const sim::RunStats b = runOn(costly, src);
    const double mispredicts = a.counters.get("mispredicts");
    EXPECT_GT(mispredicts, 1000.0);  // ~50% of 4096 unpredictable
    EXPECT_GT(b.cycles, a.cycles + 10 * 1000);
}

TEST(OooMicroarch, IcacheMissesStallFrontend)
{
    // A call chain spanning many lines with a cold L1I: the first
    // pass pays instruction misses, later passes hit.
    std::string src = "_start:\n    li s0, 0\n    li s1, 64\nouter:\n";
    for (int f = 0; f < 4; ++f)
        src += "    call f" + std::to_string(f) + "\n";
    src += "    addi s0, s0, 1\n    bne s0, s1, outer\n    ebreak\n";
    for (int f = 0; f < 4; ++f) {
        src += ".align 6\n";  // one I-line per function
        src += "f" + std::to_string(f) + ":\n";
        for (int i = 0; i < 14; ++i)
            src += "    addi t0, t0, 1\n";
        src += "    ret\n";
    }
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(assembler::assemble(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_GT(rs.counters.get("l1i.misses"), 3.0);
}
