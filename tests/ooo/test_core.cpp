/** OoO core behaviour tests: correctness vs golden, ILP extraction,
 *  branch-misprediction cost, width sensitivity. */
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "ooo/processor.hpp"
#include "sim/fuzz.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::isa;
using namespace diag::ooo;

namespace
{

Program
asmProgram(const std::string &src)
{
    return assembler::assemble(src);
}

} // namespace

TEST(OooCore, SumLoopMatchesGolden)
{
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 101
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            ebreak
    )");
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), 5050u);
    EXPECT_GT(rs.ipc(), 0.5);
}

TEST(OooCore, IlpKernelReachesHighIpc)
{
    // 24 independent chains incremented in a loop (warm I-cache and
    // predictor): an 8-wide OoO should sustain well over 3 IPC.
    std::string src = "_start:\n    li x31, 512\nloop:\n";
    for (int r = 5; r < 29; ++r)
        src += "    addi x" + std::to_string(r) + ", x" +
               std::to_string(r) + ", 1\n";
    src += "    addi x31, x31, -1\n    bnez x31, loop\n    ebreak\n";
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(asmProgram(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_GT(rs.ipc(), 3.0);
}

TEST(OooCore, DependentChainLimitsIpc)
{
    std::string src = "_start:\n";
    for (int i = 0; i < 1024; ++i)
        src += "    addi x5, x5, 1\n";
    src += "    ebreak\n";
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(asmProgram(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_LT(rs.ipc(), 1.3);  // serial dependence: ~1 IPC
}

TEST(OooCore, MispredictionCostsCycles)
{
    // A data-dependent unpredictable branch pattern versus an
    // always-taken one: the unpredictable version must be slower.
    const char *unpredictable = R"(
        _start:
            li t0, 0
            li t1, 2048
            li t2, 0
            li t3, 1103515245
            li t4, 0x10001
        loop:
            mul t4, t4, t3
            addi t4, t4, 1013
            srli t5, t4, 16
            andi t5, t5, 1
            beqz t5, skip
            addi t2, t2, 1
        skip:
            addi t0, t0, 1
            bne t0, t1, loop
            ebreak
    )";
    const char *predictable = R"(
        _start:
            li t0, 0
            li t1, 2048
            li t2, 0
            li t3, 1103515245
            li t4, 0x10001
        loop:
            mul t4, t4, t3
            addi t4, t4, 1013
            srli t5, t4, 16
            andi t5, t5, 0      # always zero -> branch always taken
            beqz t5, skip
            addi t2, t2, 1
        skip:
            addi t0, t0, 1
            bne t0, t1, loop
            ebreak
    )";
    OooProcessor a(OooConfig::baseline8());
    const sim::RunStats ra = a.run(asmProgram(unpredictable));
    OooProcessor b(OooConfig::baseline8());
    const sim::RunStats rb = b.run(asmProgram(predictable));
    EXPECT_GT(ra.counters.get("mispredicts"),
              rb.counters.get("mispredicts") + 100);
    EXPECT_GT(ra.cycles, rb.cycles);
}

TEST(OooCore, CallsUseRasWell)
{
    const Program p = asmProgram(R"(
        _start:
            li s0, 0
            li s1, 200
        loop:
            call bump
            bne s0, s1, loop
            ebreak
        bump:
            addi s0, s0, 1
            ret
    )");
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 8), 200u);
    // Returns should be predicted by the RAS: few mispredicts.
    EXPECT_LT(rs.counters.get("mispredicts"), 30.0);
}

TEST(OooCore, MemoryKernelMatchesGolden)
{
    const Program p = asmProgram(R"(
        .data
        buf: .space 1024
        .text
        _start:
            la t0, buf
            li t1, 0
            li t2, 256
        fill:
            slli t3, t1, 2
            add t4, t0, t3
            sw t1, 0(t4)
            addi t1, t1, 1
            bne t1, t2, fill
            li t1, 0
            li a0, 0
        sum:
            slli t3, t1, 2
            add t4, t0, t3
            lw t5, 0(t4)
            add a0, a0, t5
            addi t1, t1, 1
            bne t1, t2, sum
            ebreak
    )");
    sim::GoldenSim gold(p);
    gold.run();
    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), gold.reg(10));
    EXPECT_EQ(gold.reg(10), 255u * 256 / 2);
}

TEST(OooCore, MulticoreRunsDisjointThreads)
{
    const Program p = asmProgram(R"(
        .data
        out: .space 64
        .text
        _start:
            # a0 = thread id
            li t0, 0
            li t1, 10000
        loop:
            addi t0, t0, 1
            bne t0, t1, loop
            la t2, out
            slli t3, a0, 2
            add t2, t2, t3
            sw t0, 0(t2)
            ebreak
    )");
    OooProcessor proc(OooConfig::multicore12());
    std::vector<ThreadSpec> threads;
    for (u32 t = 0; t < 12; ++t)
        threads.push_back({p.entry, {{RegId{10}, t}}});
    const sim::RunStats rs = proc.runThreads(p, threads);
    EXPECT_TRUE(rs.halted);
    for (u32 t = 0; t < 12; ++t)
        EXPECT_EQ(proc.memory().read32(p.symbol("out") + 4 * t),
                  10000u);
    // Threads run on parallel cores: total time must be far below the
    // serialized sum.
    EXPECT_LT(rs.cycles, 12u * 10000u);
}

class OooDiff : public ::testing::TestWithParam<u64>
{};

TEST_P(OooDiff, RandomProgramsMatchGolden)
{
    const u64 seed = GetParam();
    sim::FuzzOptions opt;
    opt.seed = seed;
    opt.use_fp = (seed % 3) == 0;
    const std::string src = sim::generateFuzzProgram(opt);
    const Program p = assembler::assemble(src);

    sim::GoldenSim gold(p);
    const sim::RunResult gr = gold.run(2'000'000);
    ASSERT_TRUE(gr.halted);

    OooProcessor proc(OooConfig::baseline8());
    const sim::RunStats rs = proc.run(p);
    ASSERT_TRUE(rs.halted) << "seed " << seed;
    ASSERT_EQ(rs.instructions, gr.inst_count) << "seed " << seed;
    for (unsigned r = 1; r < kNumRegs; ++r)
        ASSERT_EQ(proc.finalReg(0, static_cast<RegId>(r)), gold.reg(r))
            << "seed " << seed << " register " << r;
    const Addr buf = p.symbol("buf");
    for (Addr off = 0; off < 1024; off += 4)
        ASSERT_EQ(proc.memory().read32(buf + off),
                  gold.memory().read32(buf + off))
            << "seed " << seed << " buf+" << off;
}

INSTANTIATE_TEST_SUITE_P(Seeds, OooDiff, ::testing::Range<u64>(300, 325));

// --- Per-run isolation regressions (same contract as DiAG's). ------

namespace
{

std::string
countersJson(const sim::RunStats &rs)
{
    std::ostringstream os;
    rs.counters.dumpJson(os);
    return os.str();
}

} // namespace

TEST(OooCore, RunningDifferentProgramReloadsMemory)
{
    const Program a = asmProgram(R"(
        _start:
            li a0, 111
            ebreak
    )");
    const Program b = asmProgram(R"(
        _start:
            li a0, 222
            ebreak
    )");
    OooProcessor proc(OooConfig::baseline8());
    ASSERT_TRUE(proc.run(a).halted);
    EXPECT_EQ(proc.finalReg(0, 10), 111u);
    ASSERT_TRUE(proc.run(b).halted);
    EXPECT_EQ(proc.finalReg(0, 10), 222u);
}

TEST(OooCore, RunTwiceEqualsRunOnce)
{
    // Per-run counter deltas: a reused processor's second run must
    // match a fresh processor's first run exactly — caches, FU busy
    // calendars, and StatGroup all reset between runs.
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 64
        loop:
            slli t0, a0, 2
            sw a0, 0x400(t0)
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    OooProcessor fresh(OooConfig::baseline8());
    const sim::RunStats first = fresh.run(p);

    OooProcessor reused(OooConfig::baseline8());
    const sim::RunStats r1 = reused.run(p);
    const sim::RunStats r2 = reused.run(p);
    EXPECT_EQ(countersJson(r1), countersJson(first));
    EXPECT_EQ(r2.cycles, first.cycles);
    EXPECT_EQ(r2.instructions, first.instructions);
    EXPECT_EQ(countersJson(r2), countersJson(first));
}
