/** Branch predictor unit tests. */
#include <gtest/gtest.h>

#include "ooo/predictor.hpp"

using namespace diag;
using namespace diag::ooo;

TEST(Gshare, LearnsStableDirection)
{
    GsharePredictor p(1024, 8);
    // Initially weakly not-taken.
    EXPECT_FALSE(p.predict(0x1000));
    // An always-taken branch: after warmup (history settles to all-1s
    // and the counters saturate) every prediction is taken.
    for (int i = 0; i < 20; ++i)
        p.update(0x1000, true);
    int correct = 0;
    for (int i = 0; i < 10; ++i) {
        if (p.predict(0x1000))
            ++correct;
        p.update(0x1000, true);
    }
    EXPECT_EQ(correct, 10);
    // Retrain not-taken: predictions flip after warmup.
    for (int i = 0; i < 20; ++i)
        p.update(0x1000, false);
    correct = 0;
    for (int i = 0; i < 10; ++i) {
        if (!p.predict(0x1000))
            ++correct;
        p.update(0x1000, false);
    }
    EXPECT_EQ(correct, 10);
}

TEST(Gshare, LearnsLoopPattern)
{
    GsharePredictor p(4096, 12);
    // A loop branch taken 7 times then not taken once, repeated:
    // after warmup the only mispredictions should be rare.
    int mispredicts = 0;
    for (int rep = 0; rep < 50; ++rep) {
        for (int it = 0; it < 8; ++it) {
            const bool taken = it != 7;
            if (rep >= 10 && p.predict(0x2000) != taken)
                ++mispredicts;
            p.update(0x2000, taken);
        }
    }
    // 40 reps x 8 = 320 predictions; history lets gshare nail the exit.
    EXPECT_LT(mispredicts, 60);
}

TEST(Btb, StoresAndEvicts)
{
    Btb btb(16);
    Addr target = 0;
    EXPECT_FALSE(btb.lookup(0x1000, target));
    btb.insert(0x1000, 0x2000);
    EXPECT_TRUE(btb.lookup(0x1000, target));
    EXPECT_EQ(target, 0x2000u);
    // Conflicting pc (same index, different tag) evicts.
    btb.insert(0x1000 + 16 * 4, 0x3000);
    EXPECT_FALSE(btb.lookup(0x1000, target));
}

TEST(Ras, PushPopOrder)
{
    Ras ras(4);
    ras.push(0x100);
    ras.push(0x200);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u);  // empty
}

TEST(Ras, OverflowWraps)
{
    Ras ras(2);
    ras.push(0x1);
    ras.push(0x2);
    ras.push(0x3);  // overwrites the oldest
    EXPECT_EQ(ras.pop(), 0x3u);
    EXPECT_EQ(ras.pop(), 0x2u);
}
