/**
 * @file
 * End-to-end tests of the threaded SimService and the soak DES:
 * admission backpressure, cancel-before-start vs mid-run, deadline
 * expiry, crash isolation in forked workers, cache corruption
 * degradation, and the soak's two contracts — byte-identical reports
 * for any --jobs value and full robustness under fault injection.
 *
 * Subprocess (fork) tests are skipped under ThreadSanitizer: TSan
 * instrumentation does not survive fork-without-exec.
 */
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "serve/service.hpp"
#include "serve/soak.hpp"

#if defined(__SANITIZE_THREAD__)
#define DIAG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define DIAG_TSAN 1
#endif
#endif
#ifndef DIAG_TSAN
#define DIAG_TSAN 0
#endif

using namespace diag;
using namespace diag::serve;

namespace
{

SimRequest
quickRequest(u64 id)
{
    SimRequest q;
    q.id = id;
    q.workload = "nn";
    q.config = "F4C2";
    return q;
}

TEST(SimService, MalformedResolvesImmediately)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    SimService svc(cfg);
    SimRequest q;
    q.id = 5;
    q.workload = "definitely-not-a-workload";
    auto t = svc.submit(q);
    const SimResponse r = t.result.get();
    EXPECT_EQ(r.status, RespStatus::Failed);
    EXPECT_EQ(r.fail, FailKind::Malformed);
    EXPECT_EQ(r.attempts, 0u);
    EXPECT_EQ(svc.stats().malformed, 1u);
}

TEST(SimService, RunsThenServesRepeatFromCache)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    SimService svc(cfg);
    const SimResponse a = svc.submit(quickRequest(1)).result.get();
    ASSERT_EQ(a.status, RespStatus::Ok);
    EXPECT_FALSE(a.from_cache);
    EXPECT_FALSE(a.payload.empty());

    const SimResponse b = svc.submit(quickRequest(2)).result.get();
    ASSERT_EQ(b.status, RespStatus::Ok);
    EXPECT_TRUE(b.from_cache);
    EXPECT_EQ(b.payload, a.payload)
        << "a cache hit must be byte-equal to the computed run";
    EXPECT_EQ(svc.cacheStats().hits, 1u);
}

TEST(SimService, BackpressureRejectsAndShedsAtWatermarks)
{
    // workers = 0: nothing pumps until destruction, so admission is
    // exercised deterministically against a standing backlog.
    ServiceConfig cfg;
    cfg.workers = 0;
    cfg.queue.capacity = 4;
    cfg.queue.high_watermark = 3;
    cfg.queue.low_watermark = 2;
    std::vector<SimService::Ticket> tickets;
    {
        SimService svc(cfg);
        for (u64 i = 1; i <= 3; ++i)
            tickets.push_back(svc.submit(quickRequest(i)));
        EXPECT_EQ(svc.queueDepth(), 3u);

        // At the high watermark: Low is shed, Normal still admitted.
        SimRequest low = quickRequest(4);
        low.priority = Priority::Low;
        const SimResponse shed = svc.submit(low).result.get();
        EXPECT_EQ(shed.status, RespStatus::Shed);
        EXPECT_EQ(shed.fail, FailKind::Saturated);
        EXPECT_GT(shed.retry_after_ms, 0u);

        tickets.push_back(svc.submit(quickRequest(5)));
        EXPECT_EQ(svc.queueDepth(), 4u);

        // At capacity: everything is rejected, even High.
        SimRequest high = quickRequest(6);
        high.priority = Priority::High;
        const SimResponse rej = svc.submit(high).result.get();
        EXPECT_EQ(rej.status, RespStatus::Rejected);
        EXPECT_EQ(rej.fail, FailKind::Saturated);
        EXPECT_GT(rej.retry_after_ms, 0u);

        const ServiceStats s = svc.stats();
        EXPECT_EQ(s.shed, 1u);
        EXPECT_EQ(s.rejected_full, 1u);
        EXPECT_EQ(s.accepted, 4u);
    } // destructor drains: every queued promise must still resolve
    for (auto &t : tickets) {
        const SimResponse r = t.result.get();
        EXPECT_EQ(r.status, RespStatus::Ok);
    }
}

TEST(SimService, CancelBeforeStartResolvesWithoutRunning)
{
    ServiceConfig cfg;
    cfg.workers = 0; // the request can never start
    SimService *svc = new SimService(cfg);
    auto t = svc->submit(quickRequest(1));
    t.cancel.cancel();
    delete svc; // drain serves the request; it must see the cancel
    const SimResponse r = t.result.get();
    EXPECT_EQ(r.status, RespStatus::Cancelled);
    EXPECT_EQ(r.attempts, 0u);
}

TEST(SimService, CancelMidRunStopsTheEngine)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.cache_enabled = false;
    SimService svc(cfg);
    SimRequest q;
    q.id = 1;
    // pathfinder runs ~30 ms host time on F4C16 even with skip-idle
    // scheduling, so a 5 ms cancel lands mid-run.
    q.workload = "pathfinder";
    q.config = "F4C16";
    auto t = svc.submit(q);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    t.cancel.cancel();
    const SimResponse r = t.result.get();
    EXPECT_EQ(r.status, RespStatus::Cancelled);
    EXPECT_EQ(r.attempts, 1u);
}

TEST(SimService, DeadlineExpiryClassifiesExpired)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.cache_enabled = false;
    SimService svc(cfg);
    SimRequest q;
    q.id = 1;
    q.workload = "bfs";
    q.config = "F4C16";
    q.deadline_ms = 5; // far below the run's real duration
    const SimResponse r = svc.submit(q).result.get();
    EXPECT_EQ(r.status, RespStatus::Expired);
    EXPECT_EQ(r.fail, FailKind::Timeout);
    EXPECT_LE(r.attempts, 1u);
    EXPECT_EQ(svc.stats().expired, 1u);
}

TEST(SimService, CacheCorruptionDegradesToRecompute)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.faults.seed = 3;
    cfg.faults.corrupt_pct = 100; // every insert is damaged
    SimService svc(cfg);
    const SimResponse a = svc.submit(quickRequest(1)).result.get();
    ASSERT_EQ(a.status, RespStatus::Ok);
    const SimResponse b = svc.submit(quickRequest(2)).result.get();
    ASSERT_EQ(b.status, RespStatus::Ok);
    EXPECT_FALSE(b.from_cache)
        << "the damaged entry must fail verification";
    EXPECT_EQ(b.payload, a.payload)
        << "degradation recomputes; it never serves wrong bytes";
    EXPECT_GE(svc.cacheStats().integrity_drops, 1u);
}

#if !DIAG_TSAN

TEST(SimServiceSubprocess, CrashIsolationKeepsTheDaemonAlive)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.subprocess = true;
    cfg.faults.seed = 11;
    cfg.faults.crash_pct = 100; // every attempt abort()s its child
    cfg.retry.max_attempts = 2;
    cfg.retry.base_backoff_ms = 1;
    SimService svc(cfg);
    const SimResponse r = svc.submit(quickRequest(1)).result.get();
    EXPECT_EQ(r.status, RespStatus::Failed);
    EXPECT_EQ(r.fail, FailKind::WorkerCrash);
    EXPECT_EQ(r.attempts, 2u);
    EXPECT_EQ(svc.stats().worker_crashes, 2u);

    // The daemon survived both aborts and still serves.
    ServiceConfig ok = cfg;
    ok.faults = {};
    SimService svc2(ok);
    EXPECT_EQ(svc2.submit(quickRequest(2)).result.get().status,
              RespStatus::Ok);
}

TEST(SimServiceSubprocess, PayloadCrossesTheProcessBoundaryIntact)
{
    ServiceConfig in_proc;
    in_proc.workers = 1;
    const SimResponse a =
        SimService(in_proc).submit(quickRequest(1)).result.get();

    ServiceConfig forked = in_proc;
    forked.subprocess = true;
    const SimResponse b =
        SimService(forked).submit(quickRequest(1)).result.get();

    ASSERT_EQ(a.status, RespStatus::Ok);
    ASSERT_EQ(b.status, RespStatus::Ok);
    EXPECT_EQ(a.payload, b.payload)
        << "the checksummed frame must reproduce the in-process "
           "payload byte for byte";
}

TEST(SimServiceSubprocess, ExhaustedRestartBudgetTripsTheBreaker)
{
    ServiceConfig cfg;
    cfg.workers = 1;
    cfg.subprocess = true;
    cfg.faults.seed = 13;
    cfg.faults.crash_pct = 100;
    cfg.restart_budget = 1;
    cfg.breaker_cooldown_ms = 60000; // stays open for the test
    cfg.retry.max_attempts = 2;
    cfg.retry.base_backoff_ms = 1;
    SimService svc(cfg);
    const SimResponse r = svc.submit(quickRequest(1)).result.get();
    EXPECT_EQ(r.status, RespStatus::Failed);
    // Attempt 1 crashed and exhausted the budget; attempt 2 was
    // refused by the open breaker (Saturated), ending the request.
    EXPECT_EQ(r.fail, FailKind::Saturated);
    EXPECT_STREQ(svc.breakerState(), "open");
}

#endif // !DIAG_TSAN

TEST(Soak, ReportIsByteIdenticalForAnyJobs)
{
    SoakSpec spec;
    spec.requests = 60;
    spec.seed = 5;
    spec.jobs = 1;
    const SoakReport a = runSoak(spec);
    spec.jobs = 4;
    const SoakReport b = runSoak(spec);
    EXPECT_EQ(renderSoakJson(spec, a), renderSoakJson(spec, b));
    EXPECT_TRUE(a.robust());
    EXPECT_EQ(a.unresolved, 0u);
}

TEST(Soak, FaultInjectionExercisesEveryRecoveryPath)
{
    SoakSpec spec;
    spec.requests = 150;
    spec.seed = 2;
    spec.jobs = 4;
    spec.faults.seed = 2;
    spec.faults.crash_pct = 20;
    spec.faults.stall_pct = 10;
    spec.faults.corrupt_pct = 50;
    spec.restart_budget = 2;
    const SoakReport rep = runSoak(spec);

    // The soak's whole point: under injected crashes, stalls, and
    // corruption, every request resolves and no payload deviates.
    EXPECT_EQ(rep.unresolved, 0u);
    EXPECT_EQ(rep.wrong_payloads, 0u);
    EXPECT_TRUE(rep.robust());

    // And each recovery path actually fired.
    EXPECT_GT(rep.worker_crashes, 0u);
    EXPECT_GT(rep.worker_stalls, 0u);
    EXPECT_GT(rep.retries, 0u);
    EXPECT_GT(rep.cache.integrity_drops, 0u);
    EXPECT_GT(rep.breaker_trips, 0u);
    EXPECT_GT(rep.ok, 0u);
}

} // namespace
