/**
 * @file
 * Unit tests for the service-layer policy pieces: the bounded
 * admission queue (watermarks, hysteresis, priority order), the
 * retry policy, the result cache's integrity degradation, the
 * restart-budget circuit breaker, the fault plan's determinism, and
 * request validation. All pure single-threaded policy — the threaded
 * service and the soak DES reuse exactly these objects.
 */
#include <gtest/gtest.h>

#include "serve/breaker.hpp"
#include "serve/cache.hpp"
#include "serve/fault_plan.hpp"
#include "serve/queue.hpp"
#include "serve/retry.hpp"
#include "serve/worker.hpp"

using namespace diag;
using namespace diag::serve;

namespace
{

QueueConfig
smallQueue()
{
    QueueConfig q;
    q.capacity = 8;
    q.high_watermark = 6;
    q.low_watermark = 3;
    return q;
}

TEST(BoundedQueue, RejectsAtCapacity)
{
    BoundedQueue<int> q(smallQueue());
    for (int i = 0; i < 8; ++i) {
        int v = i;
        ASSERT_EQ(q.tryPush(v, Priority::High), Admission::Admitted);
    }
    int v = 99;
    EXPECT_EQ(q.tryPush(v, Priority::High), Admission::Rejected);
    EXPECT_EQ(v, 99) << "a rejected item must be left untouched";
    EXPECT_EQ(q.size(), 8u);
}

TEST(BoundedQueue, ShedsLowAboveHighWatermarkWithHysteresis)
{
    BoundedQueue<int> q(smallQueue());
    for (int i = 0; i < 6; ++i) {
        int v = i;
        ASSERT_EQ(q.tryPush(v, Priority::Normal),
                  Admission::Admitted);
    }
    // Depth 6 = the high watermark: shedding starts, Low is shed,
    // Normal still gets in.
    int v = 100;
    EXPECT_EQ(q.tryPush(v, Priority::Low), Admission::Shed);
    EXPECT_TRUE(q.shedding());
    EXPECT_EQ(q.tryPush(v, Priority::Normal), Admission::Admitted);

    // Drain to just above the low watermark: still shedding.
    while (q.size() > 3)
        ASSERT_TRUE(q.tryPop().has_value());
    v = 101;
    EXPECT_EQ(q.tryPush(v, Priority::Low), Admission::Shed);

    // Below the low watermark the mode clears and Low is admitted
    // again — hysteresis, no flapping around one boundary.
    ASSERT_TRUE(q.tryPop().has_value());
    ASSERT_TRUE(q.tryPop().has_value());
    EXPECT_EQ(q.tryPush(v, Priority::Low), Admission::Admitted);
    EXPECT_FALSE(q.shedding());
}

TEST(BoundedQueue, PopsPriorityOrderFifoWithinClass)
{
    BoundedQueue<int> q;
    const auto push = [&](int v, Priority p) {
        int item = v;
        ASSERT_EQ(q.tryPush(item, p), Admission::Admitted);
    };
    push(1, Priority::Low);
    push(2, Priority::Normal);
    push(3, Priority::High);
    push(4, Priority::Normal);
    push(5, Priority::High);
    const int want[] = {3, 5, 2, 4, 1};
    for (const int w : want) {
        auto got = q.tryPop();
        ASSERT_TRUE(got.has_value());
        EXPECT_EQ(*got, w);
    }
    EXPECT_FALSE(q.tryPop().has_value());
}

TEST(RetryPolicy, BackoffGrowsIsCappedAndDeterministic)
{
    RetryPolicy p;
    p.base_backoff_ms = 50;
    p.max_backoff_ms = 400;
    p.jitter = 0.5;
    const u64 b1 = p.backoffMs(7, 42, 1);
    const u64 b2 = p.backoffMs(7, 42, 2);
    EXPECT_EQ(b1, p.backoffMs(7, 42, 1)) << "pure in its inputs";
    EXPECT_GE(b1, 50u);
    EXPECT_LE(b1, 75u); // base + at most 50% jitter
    EXPECT_GE(b2, 100u);
    // Far past the cap: bounded by max * (1 + jitter).
    EXPECT_LE(p.backoffMs(7, 42, 10), 600u);
    // Different requests decorrelate (with overwhelming probability
    // for any fixed pair).
    EXPECT_NE(p.backoffMs(7, 42, 1), p.backoffMs(7, 43, 1));
}

TEST(RetryPolicy, OnlyRetryableKindsWithinBudget)
{
    RetryPolicy p;
    p.max_attempts = 3;
    EXPECT_TRUE(p.shouldRetry(FailKind::Timeout, 1));
    EXPECT_TRUE(p.shouldRetry(FailKind::WorkerCrash, 2));
    EXPECT_FALSE(p.shouldRetry(FailKind::WorkerCrash, 3));
    EXPECT_FALSE(p.shouldRetry(FailKind::Sdc, 1));
    EXPECT_FALSE(p.shouldRetry(FailKind::Trap, 1));
    EXPECT_FALSE(p.shouldRetry(FailKind::Malformed, 1));
}

TEST(ResultCache, VerifiedHitThenCorruptionDegradesToMiss)
{
    ResultCache c;
    std::string out;
    EXPECT_FALSE(c.get(1, &out));
    c.put(1, "payload-bytes");
    ASSERT_TRUE(c.get(1, &out));
    EXPECT_EQ(out, "payload-bytes");

    // Damage the entry: the next read must fail verification, drop
    // the entry, and report a miss — never return the bytes.
    c.corrupt(1);
    out.clear();
    EXPECT_FALSE(c.get(1, &out));
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(c.stats().integrity_drops, 1u);
    EXPECT_EQ(c.size(), 0u);

    // Recompute-and-reinsert restores service.
    c.put(1, "payload-bytes");
    EXPECT_TRUE(c.get(1, &out));
    EXPECT_EQ(out, "payload-bytes");
}

TEST(CircuitBreaker, OpensOnBudgetCoolsAndProbes)
{
    CircuitBreaker b(2, 100);
    EXPECT_TRUE(b.allow(0));
    b.recordCrash(10);
    EXPECT_TRUE(b.allow(11)); // one unit of budget left
    b.recordCrash(20);
    EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
    EXPECT_EQ(b.trips(), 1u);
    EXPECT_FALSE(b.allow(50)) << "open: inside the cooldown";

    // Cooldown over: exactly one probe goes through.
    EXPECT_TRUE(b.allow(120));
    EXPECT_FALSE(b.allow(121)) << "half-open admits one probe";
    b.recordSuccess();
    EXPECT_EQ(b.state(), CircuitBreaker::State::Closed);

    // The refilled budget absorbs another crash without tripping.
    b.recordCrash(200);
    EXPECT_TRUE(b.allow(201));
}

TEST(CircuitBreaker, HalfOpenCrashReopens)
{
    CircuitBreaker b(1, 100);
    b.recordCrash(0);
    EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
    EXPECT_TRUE(b.allow(150));
    b.recordCrash(150); // the probe itself died
    EXPECT_EQ(b.state(), CircuitBreaker::State::Open);
    EXPECT_FALSE(b.allow(200));
    EXPECT_EQ(b.trips(), 2u);
}

TEST(ServiceFaultPlan, DeterministicAndRateBounded)
{
    ServiceFaultPlan p;
    p.seed = 9;
    p.crash_pct = 10;
    p.stall_pct = 10;
    unsigned crashes = 0, stalls = 0;
    for (u64 id = 0; id < 2000; ++id) {
        EXPECT_EQ(p.crashes(id, 1), p.crashes(id, 1));
        if (p.crashes(id, 1))
            ++crashes;
        if (p.stalls(id, 1)) {
            ++stalls;
            EXPECT_FALSE(p.crashes(id, 1))
                << "one attempt has exactly one injected fate";
        }
    }
    EXPECT_GT(crashes, 100u);
    EXPECT_LT(crashes, 400u);
    EXPECT_GT(stalls, 100u);
    EXPECT_LT(stalls, 400u);

    const ServiceFaultPlan none;
    EXPECT_FALSE(none.any());
    EXPECT_FALSE(none.crashes(1, 1));
    EXPECT_FALSE(none.stalls(1, 1));
    EXPECT_FALSE(none.corrupts(1, 1));
}

TEST(ValidateRequest, ClassifiesMalformedWithoutFataling)
{
    SimRequest q;
    q.workload = "no-such-workload";
    EXPECT_FALSE(validateRequest(q).ok);

    q.workload = "nn";
    q.config = "NOPE";
    EXPECT_FALSE(validateRequest(q).ok);

    q.config = "F4C2";
    q.threads = 0;
    EXPECT_FALSE(validateRequest(q).ok);

    q.threads = 1;
    const ValidatedRequest v = validateRequest(q);
    ASSERT_TRUE(v.ok);
    EXPECT_NE(v.content_key, 0u);
    EXPECT_EQ(v.content_key, validateRequest(q).content_key)
        << "the content key is pure in the request";

    SimRequest other = q;
    other.config = "F4C16";
    EXPECT_NE(validateRequest(other).content_key, v.content_key);
    other = q;
    other.threads = 2;
    EXPECT_NE(validateRequest(other).content_key, v.content_key);
}

} // namespace
