/** Energy/area model tests: Table 3 reproduction and breakdown shape
 *  properties the paper reports in §6.1, §7.3.1, and Figure 11. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "energy/components.hpp"
#include "energy/diag_energy.hpp"
#include "energy/ooo_energy.hpp"
#include "ooo/processor.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::energy;

namespace
{

sim::RunStats
runDiag(const DiagConfig &cfg, const std::string &src)
{
    DiagProcessor proc(cfg);
    return proc.run(assembler::assemble(src));
}

const char *kFpKernel = R"(
    _start:
        li t0, 0
        li t1, 2000
        fcvt.s.w ft0, t0
        li t2, 3
        fcvt.s.w ft1, t2
    loop:
        fmadd.s ft0, ft1, ft1, ft0
        fmul.s ft2, ft0, ft1
        fadd.s ft0, ft0, ft2
        addi t0, t0, 1
        bne t0, t1, loop
        ebreak
)";

const char *kMemKernel = R"(
    .data
    arr: .space 65536
    .text
    _start:
        la t0, arr
        li t1, 0
        li t2, 1024
    loop:
        slli t3, t1, 6
        add t4, t0, t3
        lw t5, 0(t4)
        add t6, t6, t5
        addi t1, t1, 1
        bne t1, t2, loop
        ebreak
)";

} // namespace

TEST(Area, Table3ClusterReproduction)
{
    // 16 PEs + 16 lane slices + cluster control = PCLUSTER 2.208 mm².
    const double cluster_um2 =
        16.0 * (kPeWithFpu.area_um2 + kRegLane.area_um2) +
        kClusterCtrlAreaUm2;
    EXPECT_NEAR(cluster_um2, kClusterAreaUm2, 1.0);
    // Register lanes ~16.3% of a cluster per §6.1.1 (their number
    // counts lane area against the PE-slice total).
    const double lane_frac = 16.0 * kRegLane.area_um2 / kClusterAreaUm2;
    EXPECT_NEAR(lane_frac, 0.114, 0.05);
    // FPU occupies ~68% of a PE (§6.1.1).
    EXPECT_NEAR(kFpu.area_um2 / kPeWithFpu.area_um2, 0.686, 0.01);
}

TEST(Area, Table3TopLevelReproduction)
{
    const AreaReport rep = diagArea(DiagConfig::f4c32());
    // Paper: F4C32 TOP = 93.07 mm² (32 clusters + CACTI caches).
    EXPECT_NEAR(rep.totalMm2(), 93.07, 4.0);
    EXPECT_GT(rep.breakdown_mm2.at("pe_compute"), 40.0);
    EXPECT_GT(rep.breakdown_mm2.at("caches"), 15.0);
}

TEST(Area, PeakPowerNearTable3)
{
    // Paper: F4C32 total power 74.30 W with every PE powered.
    EXPECT_NEAR(diagPeakPowerW(DiagConfig::f4c32()), 74.3, 8.0);
}

TEST(Area, SmallerConfigsAreSmaller)
{
    const double a2 = diagArea(DiagConfig::f4c2()).totalMm2();
    const double a16 = diagArea(DiagConfig::f4c16()).totalMm2();
    const double a32 = diagArea(DiagConfig::f4c32()).totalMm2();
    EXPECT_LT(a2, a16);
    EXPECT_LT(a16, a32);
}

TEST(DiagEnergy, FpKernelSpendsOnFpUnits)
{
    const sim::RunStats rs = runDiag(DiagConfig::f4c2(), kFpKernel);
    const EnergyReport rep = diagEnergy(DiagConfig::f4c2(), rs);
    EXPECT_GT(rep.totalPj(), 0.0);
    // Compute-heavy: FP units take a large share (Fig 11 leftmost bars).
    EXPECT_GT(rep.fraction("fp_units"), 0.25);
    EXPECT_GT(rep.fraction("lanes_alu"), 0.05);
}

TEST(DiagEnergy, MemoryKernelSpendsOnMemory)
{
    const sim::RunStats rs = runDiag(DiagConfig::f4c2(), kMemKernel);
    const EnergyReport rep = diagEnergy(DiagConfig::f4c2(), rs);
    // Memory-bound: memory dominates (Fig 11 graph-traversal bars).
    EXPECT_GT(rep.fraction("memory"), 0.4);
    EXPECT_LT(rep.fraction("fp_units"), 0.2);
}

TEST(DiagEnergy, ReuseReducesControlEnergyShare)
{
    // The same loop with reuse disabled-equivalent (tiny ring churn)
    // versus a large ring: both reuse here, so instead check that
    // control energy is a small share in steady-state loops.
    const sim::RunStats rs = runDiag(DiagConfig::f4c32(), kFpKernel);
    const EnergyReport rep = diagEnergy(DiagConfig::f4c32(), rs);
    EXPECT_LT(rep.fraction("control"), 0.35);
}

TEST(OooEnergy, FrontendOverheadIsSignificant)
{
    // A high-IPC integer loop: per-instruction frontend + scheduling
    // events dominate the baseline's dynamic energy (the overhead the
    // paper's §1/§4 motivates eliminating).
    std::string src = "_start:\n    li x31, 4096\nloop:\n";
    for (int r = 5; r < 25; ++r)
        src += "    addi x" + std::to_string(r) + ", x" +
               std::to_string(r) + ", 1\n";
    src += "    addi x31, x31, -1\n    bnez x31, loop\n    ebreak\n";
    ooo::OooProcessor proc(ooo::OooConfig::baseline8());
    const sim::RunStats rs = proc.run(assembler::assemble(src));
    const EnergyReport rep = oooEnergy(proc.config(), rs);
    EXPECT_GT(rep.totalPj(), 0.0);
    EXPECT_GT(rep.fraction("frontend") + rep.fraction("scheduling"),
              0.25);
}

TEST(Efficiency, DiagBeatsOooOnReusedComputeLoop)
{
    // The headline mechanism: a compute loop with full datapath reuse
    // should cost DiAG less energy than the OoO baseline (Fig 12).
    const Program p = assembler::assemble(kFpKernel);

    DiagProcessor dproc(DiagConfig::f4c16());
    const sim::RunStats drs = dproc.run(p);
    const double de = diagEnergy(DiagConfig::f4c16(), drs).totalPj();

    ooo::OooProcessor oproc(ooo::OooConfig::baseline8());
    const sim::RunStats ors = oproc.run(p);
    const double oe = oooEnergy(oproc.config(), ors).totalPj();

    ASSERT_TRUE(drs.halted);
    ASSERT_TRUE(ors.halted);
    EXPECT_LT(de, oe) << "diag=" << de << " ooo=" << oe;
}
