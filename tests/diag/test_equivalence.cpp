/**
 * Differential equivalence sweep for the skip-idle scheduler
 * (DESIGN.md §15): the event-timed fast path (cached cluster
 * metadata, PE-cursor jumps, in-place lane propagation, closed-form
 * simt trips, steady-state loop batching) must be *bit-for-bit*
 * indistinguishable from dense per-PE stepping. Every workload and a
 * seeded fuzz corpus run both ways; cycles, instruction counts, the
 * full StatGroup JSON dump (byte-equal — same keys, same order, same
 * values), trace event streams, address logs, and fault-campaign
 * reports must match exactly.
 */
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "fault/campaign.hpp"
#include "harness/runner.hpp"
#include "sim/fuzz.hpp"
#include "trace/export.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::core;

namespace
{

std::string
statsJson(const StatGroup &g)
{
    std::ostringstream os;
    g.dumpJson(os);
    return os.str();
}

/** Dense twin of @p cfg: same machine, per-PE stepping. */
DiagConfig
denseTwin(const DiagConfig &cfg)
{
    DiagConfig d = cfg;
    d.dense_loop = true;
    return d;
}

/** Full RunStats equality, counters compared as dumped JSON bytes. */
void
expectRunsEqual(const sim::RunStats &skip, const sim::RunStats &dense,
                const std::string &what)
{
    EXPECT_EQ(skip.cycles, dense.cycles) << what;
    EXPECT_EQ(skip.instructions, dense.instructions) << what;
    EXPECT_EQ(skip.halted, dense.halted) << what;
    EXPECT_EQ(skip.timed_out, dense.timed_out) << what;
    EXPECT_EQ(skip.faulted, dense.faulted) << what;
    EXPECT_EQ(skip.aborted, dense.aborted) << what;
    EXPECT_EQ(skip.stop_reason, dense.stop_reason) << what;
    EXPECT_EQ(statsJson(skip.counters), statsJson(dense.counters))
        << what;
}

/** Field-wise AddrTrace equality (the type has no operator==). */
void
expectAddrTracesEqual(const trace::AddrTrace &a,
                      const trace::AddrTrace &b, const std::string &what)
{
    ASSERT_EQ(a.regions.size(), b.regions.size()) << what;
    for (size_t i = 0; i < a.regions.size(); ++i) {
        const auto &ra = a.regions[i];
        const auto &rb = b.regions[i];
        EXPECT_EQ(ra.simt_s_pc, rb.simt_s_pc) << what << " region " << i;
        EXPECT_EQ(ra.rc0, rb.rc0) << what << " region " << i;
        EXPECT_EQ(ra.step, rb.step) << what << " region " << i;
        EXPECT_EQ(ra.trips, rb.trips) << what << " region " << i;
        EXPECT_EQ(ra.addrs, rb.addrs) << what << " region " << i;
        EXPECT_EQ(ra.counts, rb.counts) << what << " region " << i;
    }
    EXPECT_EQ(a.serial_addrs, b.serial_addrs) << what;
    EXPECT_EQ(a.serial_counts, b.serial_counts) << what;
    EXPECT_EQ(a.loop_backs, b.loop_backs) << what;
    EXPECT_EQ(a.loop_back_count, b.loop_back_count) << what;
}

/** Run @p w under @p spec on skip-idle and dense twins; compare. */
void
sweepWorkload(const workloads::Workload &w, const DiagConfig &cfg,
              bool use_simt)
{
    harness::RunSpec spec;
    spec.use_simt = use_simt;
    const harness::EngineRun skip = harness::runOnDiag(cfg, w, spec);
    const harness::EngineRun dense =
        harness::runOnDiag(denseTwin(cfg), w, spec);
    const std::string what =
        w.name + (use_simt ? " (simt)" : " (serial)");
    EXPECT_TRUE(skip.checked) << what;
    EXPECT_TRUE(dense.checked) << what;
    expectRunsEqual(skip.stats, dense.stats, what);
}

} // namespace

// --- Workload sweep: every bundled workload, both variants. --------

TEST(SkipIdleEquivalence, AllBundledWorkloadsMatchDense)
{
    const DiagConfig cfg = DiagConfig::f4c32();
    for (const auto &suite :
         {workloads::rodiniaSuite(), workloads::specSuite()}) {
        for (const workloads::Workload &w : suite) {
            sweepWorkload(w, cfg, false);
            if (!w.asm_simt.empty())
                sweepWorkload(w, cfg, true);
        }
    }
}

TEST(SkipIdleEquivalence, SmallConfigMatchesDense)
{
    // The two-cluster machine exercises cluster-boundary crossings and
    // ring wrap far more often per instruction.
    const DiagConfig cfg = DiagConfig::f4c2();
    for (const workloads::Workload &w : workloads::rodiniaSuite())
        sweepWorkload(w, cfg, false);
}

// --- Fuzz corpus: seeded random programs, all generator modes. -----

namespace
{

void
fuzzOne(u64 seed, const DiagConfig &cfg, bool use_fp, bool use_simt)
{
    sim::FuzzOptions fo;
    fo.seed = seed;
    fo.use_fp = use_fp;
    fo.use_simt = use_simt;
    const sim::FuzzProgram fp = sim::generateFuzzProgramEx(fo);
    const Program p = assembler::assemble(fp.source);

    DiagProcessor skip(cfg);
    const sim::RunStats rs = skip.run(p);
    DiagProcessor dense(denseTwin(cfg));
    const sim::RunStats rd = dense.run(p);

    const std::string what = "fuzz seed " + std::to_string(seed);
    expectRunsEqual(rs, rd, what);
    for (unsigned r = 1; r < isa::kNumRegs; ++r)
        ASSERT_EQ(skip.finalReg(0, static_cast<isa::RegId>(r)),
                  dense.finalReg(0, static_cast<isa::RegId>(r)))
            << what << ": register " << r;
    const Addr buf = p.symbol("buf");
    for (Addr off = 0; off < 1024; off += 4)
        ASSERT_EQ(skip.memory().read32(buf + off),
                  dense.memory().read32(buf + off))
            << what << ": buf+" << off;
}

} // namespace

class SkipIdleFuzz : public ::testing::TestWithParam<u64>
{};

TEST_P(SkipIdleFuzz, IntegerProgramsMatchDense)
{
    fuzzOne(GetParam(), DiagConfig::f4c16(), false, false);
}

TEST_P(SkipIdleFuzz, FpProgramsMatchDense)
{
    fuzzOne(GetParam() + 1000, DiagConfig::f4c16(), true, false);
}

TEST_P(SkipIdleFuzz, SimtProgramsMatchDense)
{
    fuzzOne(GetParam() + 2000, DiagConfig::f4c16(), false, true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkipIdleFuzz,
                         ::testing::Range<u64>(1, 13));

// --- Loop-batcher stress: shapes chosen to hit the batch paths. ----

namespace
{

void
kernelBothWays(const std::string &src)
{
    const Program p = assembler::assemble(src);
    DiagProcessor skip(DiagConfig::f4c32());
    const sim::RunStats rs = skip.run(p);
    DiagProcessor dense(denseTwin(DiagConfig::f4c32()));
    const sim::RunStats rd = dense.run(p);
    ASSERT_TRUE(rs.halted);
    expectRunsEqual(rs, rd, src.substr(0, 40));
    for (unsigned r = 1; r < isa::kNumRegs; ++r)
        ASSERT_EQ(skip.finalReg(0, static_cast<isa::RegId>(r)),
                  dense.finalReg(0, static_cast<isa::RegId>(r)))
            << "register " << r;
}

} // namespace

TEST(SkipIdleEquivalence, SteadyAluLoop)
{
    // The bench kernel shape: long counted loop, pure ALU — the case
    // the steady-state batcher is built for.
    kernelBothWays(R"(
        _start:
            li a0, 0
            li a1, 2000
        loop:
            addi t0, a0, 3
            slli t1, t0, 2
            xor t2, t1, a0
            and t3, t2, t1
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
}

TEST(SkipIdleEquivalence, ShortTripLoops)
{
    // One-, two-, and three-iteration loops: the batcher's probe can
    // never confirm a steady state; the exit path must still be exact.
    for (int n : {1, 2, 3}) {
        kernelBothWays(R"(
        _start:
            li a0, 0
            li a1, )" + std::to_string(n) +
                       R"(
        loop:
            addi t0, a0, 7
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
        )");
    }
}

TEST(SkipIdleEquivalence, NestedLoopsMatchDense)
{
    // The inner loop re-enters steady state once per outer iteration;
    // every re-qualification and final not-taken exit must replay
    // exactly.
    kernelBothWays(R"(
        _start:
            li s0, 0
            li s1, 17
        outer:
            li a0, 0
            li a1, 23
        inner:
            add t0, a0, s0
            addi a0, a0, 1
            bne a0, a1, inner
            addi s0, s0, 1
            bne s0, s1, outer
            ebreak
    )");
}

TEST(SkipIdleEquivalence, MemoryLoopMatchesDense)
{
    // Strided stores then a reduction load loop: cache/bus counters
    // and the final memory image must survive batching untouched.
    kernelBothWays(R"(
        _start:
            li a0, 0x8000
            li a1, 0
            li a2, 256
        fill:
            sw a1, 0(a0)
            addi a0, a0, 4
            addi a1, a1, 3
            bne a1, a2, fillchk
        fillchk:
            blt a1, a2, fill
            li a0, 0x8000
            li a3, 0
            li a4, 0
        sum:
            lw t0, 0(a0)
            add a3, a3, t0
            addi a0, a0, 4
            addi a4, a4, 1
            blt a4, a2, sum
            ebreak
    )");
}

TEST(SkipIdleEquivalence, DataDependentExitMatchesDense)
{
    // Collatz-style loop: the trip count is not affine in the
    // induction variable, so delta vectors never stabilize for long —
    // the batcher must keep re-probing without drifting.
    kernelBothWays(R"(
        _start:
            li a0, 27
            li t2, 1
        loop:
            andi t0, a0, 1
            beq t0, zero, even
            slli t1, a0, 1
            add a0, t1, a0
            addi a0, a0, 1
            jal x0, next
        even:
            srli a0, a0, 1
        next:
            bne a0, t2, loop
            ebreak
    )");
}

// --- Observer equality: traces and address logs, byte for byte. ----

TEST(SkipIdleEquivalence, ChromeTraceBytesMatchDense)
{
    // An attached tracer forces dense stepping of loops, but the
    // PE-cursor jump, cached metadata, and in-place lane file stay
    // active — the emitted event stream must still be byte-identical.
    const workloads::Workload w = workloads::findWorkload("nn");
    trace::TraceConfig tc;
    harness::RunSpec spec;
    spec.trace = &tc;
    const harness::EngineRun skip =
        harness::runOnDiag(DiagConfig::f4c16(), w, spec);
    const harness::EngineRun dense =
        harness::runOnDiag(denseTwin(DiagConfig::f4c16()), w, spec);
    ASSERT_TRUE(skip.trace && dense.trace);
    expectRunsEqual(skip.stats, dense.stats, "nn traced");

    trace::TraceMeta meta;
    meta.workload = w.name;
    meta.config = "f4c16";
    std::ostringstream ts, td;
    trace::writeChromeTrace(ts, *skip.trace, meta);
    trace::writeChromeTrace(td, *dense.trace, meta);
    EXPECT_EQ(ts.str(), td.str());
}

TEST(SkipIdleEquivalence, AddrTraceMatchesDense)
{
    const workloads::Workload w = workloads::findWorkload("nn");
    harness::RunSpec spec;
    spec.use_simt = !w.asm_simt.empty();
    spec.record_addrs = true;
    const harness::EngineRun skip =
        harness::runOnDiag(DiagConfig::f4c16(), w, spec);
    const harness::EngineRun dense =
        harness::runOnDiag(denseTwin(DiagConfig::f4c16()), w, spec);
    ASSERT_TRUE(skip.addrs && dense.addrs);
    expectRunsEqual(skip.stats, dense.stats, "nn addr-traced");
    expectAddrTracesEqual(*skip.addrs, *dense.addrs, "nn");
}

// --- Fault campaigns: forced-dense injection runs, any job count. --

TEST(SkipIdleEquivalence, FaultCampaignReportMatchesDense)
{
    // Fault controllers force dense stepping (a batched iteration has
    // no cycle at which to inject), so a campaign configured with
    // skip-idle scheduling must render the very same report as one
    // configured dense — and as one fanned over four host jobs.
    fault::CampaignSpec spec;
    spec.workload = "nn";
    spec.config = DiagConfig::f4c16();
    spec.seed = 99;
    spec.trials = 12;
    spec.jobs = 1;
    const fault::CampaignReport skip = fault::runCampaign(spec);

    fault::CampaignSpec dspec = spec;
    dspec.config = denseTwin(spec.config);
    const fault::CampaignReport dense = fault::runCampaign(dspec);
    EXPECT_EQ(skip.renderJson(), dense.renderJson());

    fault::CampaignSpec fanned = spec;
    fanned.jobs = 4;
    const fault::CampaignReport par = fault::runCampaign(fanned);
    EXPECT_EQ(skip.renderJson(), par.renderJson());
}
