/** Ring control-unit behaviour: line residency and reuse, eviction
 *  under capacity, prefetch suppression for resident loops, the
 *  speculation window, and the stride-prefetcher extension. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"

using namespace diag;
using namespace diag::core;

namespace
{

sim::RunStats
runOn(const DiagConfig &cfg, const std::string &src)
{
    DiagProcessor proc(cfg);
    return proc.run(assembler::assemble(src));
}

/** A loop whose body spans @p lines I-lines (16 insts each). */
std::string
loopOfLines(unsigned lines, unsigned iters)
{
    std::string src = "_start:\n    li t0, 0\n    li t1, " +
                      std::to_string(iters) + "\n    j loop\n";
    src += ".org 0x2000\nloop:\n";
    for (unsigned i = 0; i < lines * 16 - 2; ++i)
        src += "    addi t2, t2, 1\n";
    src += "    addi t0, t0, 1\n    bne t0, t1, loop\n    ebreak\n";
    return src;
}

} // namespace

TEST(RingControl, LoopFittingRingIsFullyReused)
{
    // 4-line loop in a 16-cluster ring: after the first iteration no
    // further fetches happen.
    const sim::RunStats rs =
        runOn(DiagConfig::f4c16(), loopOfLines(4, 50));
    EXPECT_LT(rs.counters.get("iline_fetches"), 10.0);
    EXPECT_GT(rs.counters.get("reuse_activations"), 150.0);
}

TEST(RingControl, LoopLargerThanRingThrashes)
{
    // 5-line loop in a 2-cluster ring: every iteration refetches.
    DiagConfig cfg = DiagConfig::f4c32();
    cfg.num_rings = 16;  // 2 clusters per ring
    const sim::RunStats rs = runOn(cfg, loopOfLines(5, 50));
    EXPECT_GT(rs.counters.get("iline_fetches"), 200.0);
}

TEST(RingControl, ThrashingCostsCycles)
{
    const sim::RunStats fit =
        runOn(DiagConfig::f4c16(), loopOfLines(5, 50));
    DiagConfig tiny = DiagConfig::f4c32();
    tiny.num_rings = 16;
    const sim::RunStats thrash = runOn(tiny, loopOfLines(5, 50));
    EXPECT_LT(fit.cycles, thrash.cycles);
}

TEST(RingControl, SingleLineLoopStaysResidentInTwoClusterRing)
{
    // The fall-through prefetch must not evict a resident loop line
    // even with only two clusters.
    DiagConfig cfg = DiagConfig::f4c2();
    const sim::RunStats rs = runOn(cfg, loopOfLines(1, 100));
    EXPECT_LT(rs.counters.get("iline_fetches"), 8.0);
    EXPECT_GT(rs.counters.get("reuse_activations"), 95.0);
}

TEST(RingControl, SpeculationDepthBoundsOverlap)
{
    // Deeper speculation windows cannot be slower; depth 1 serializes
    // iterations of an independent-work loop and must be slowest.
    std::string src = "_start:\n    li t0, 0\n    li t1, 300\nloop:\n";
    for (int r = 5; r < 21; ++r)
        src += "    addi x" + std::to_string(r) + ", x" +
               std::to_string(r) + ", 1\n";
    src += "    addi t0, t0, 1\n    bne t0, t1, loop\n    ebreak\n";

    Cycle prev = ~Cycle{0};
    for (const unsigned depth : {1u, 4u, 12u}) {
        DiagConfig cfg = DiagConfig::f4c32();
        cfg.speculation_depth = depth;
        const sim::RunStats rs = runOn(cfg, src);
        EXPECT_LE(rs.cycles, prev) << "depth " << depth;
        prev = rs.cycles;
    }
}

TEST(RingControl, StridePrefetchHelpsStreams)
{
    // A strided streaming loop over an L2-resident array: the per-PE
    // stride prefetcher converts L1 misses into line-buffer hits.
    const char *src = R"(
        .data
        .org 0x100000
        arr: .space 262144
        .text
        _start:
            li t0, 0x100000
            li t1, 0
            li t2, 4096
        loop:
            slli t3, t1, 6
            add t4, t0, t3
            lw t5, 0(t4)
            add t6, t6, t5
            addi t1, t1, 1
            bne t1, t2, loop
            ebreak
    )";
    auto run = [&](bool prefetch) {
        DiagConfig cfg = DiagConfig::f4c32();
        cfg.stride_prefetch_enabled = prefetch;
        DiagProcessor proc(cfg);
        proc.loadProgram(assembler::assemble(src));
        proc.warmCaches();
        return proc.run(assembler::assemble(src));
    };
    const sim::RunStats off = run(false);
    const sim::RunStats on = run(true);
    EXPECT_LT(on.cycles, off.cycles);
    EXPECT_GT(on.counters.get("stride_prefetches"), 3000.0);
}

TEST(RingControl, StridePrefetchKeepsResultsCorrect)
{
    DiagConfig cfg = DiagConfig::f4c32();
    cfg.stride_prefetch_enabled = true;
    DiagProcessor proc(cfg);
    const Program p = assembler::assemble(R"(
        .data
        arr: .space 4096
        .text
        _start:
            la t0, arr
            li t1, 0
            li t2, 512
        fill:
            slli t3, t1, 3
            add t4, t0, t3
            sw t1, 0(t4)
            addi t1, t1, 1
            bne t1, t2, fill
            li t1, 0
            li a0, 0
        sum:
            slli t3, t1, 3
            add t4, t0, t3
            lw t5, 0(t4)
            add a0, a0, t5
            addi t1, t1, 1
            bne t1, t2, sum
            ebreak
    )");
    proc.run(p);
    EXPECT_EQ(proc.finalReg(0, 10), 511u * 512 / 2);
}
