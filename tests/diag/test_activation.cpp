/** Unit tests for the DiAG activation engine: lane timing, forward
 *  branches, ILP exposure, memory-lane forwarding. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/activation.hpp"
#include "isa/decoder.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::isa;

namespace
{

/** Harness owning everything an activation needs. */
struct Rig
{
    DiagConfig cfg = DiagConfig::f4c2();
    mem::MemHierarchy mh{cfg.mem, 1};
    StatGroup stats{"t"};
    ActivationEngine engine{cfg, mh, 0, stats};
    SparseMemory mem;
    ThreadMemCtx tmc{mem, cfg.mem_lane_entries};
    Cluster cl;
    /** Lane file, updated in place by run(); holds the output-latch
     *  state afterwards (what ActivationOutput::regs used to carry). */
    LaneFile regs{};

    /** Load a line of assembly (at most 16 instructions) at 0x1000. */
    void
    load(const std::string &src)
    {
        const Program p = assembler::assemble(".org 0x1000\n" + src);
        p.loadInto(mem);
        cl.index = 0;
        cl.line_base = 0x1000;
        cl.insts.clear();
        for (unsigned i = 0; i < cfg.pes_per_cluster; ++i)
            cl.insts.push_back(decode(mem.read32(0x1000 + 4 * i)));
    }

    ActivationOutput
    run(Addr entry = 0x1000, const LaneFile &init = {})
    {
        regs = init;
        ActivationInput in;
        in.cluster = &cl;
        in.entry_pc = entry;
        return engine.run(in, regs, tmc);
    }
};

} // namespace

TEST(Activation, StraightLineRetiresAll)
{
    Rig rig;
    rig.load(R"(
        addi x1, x0, 1
        addi x2, x0, 2
        add x3, x1, x2
        ebreak
    )");
    const ActivationOutput out = rig.run();
    EXPECT_EQ(out.exit, ActExit::Halt);
    EXPECT_FALSE(out.faulted);
    EXPECT_EQ(out.retired, 4u);
    EXPECT_EQ(rig.regs[3].value, 3u);
}

TEST(Activation, IndependentOpsOverlap)
{
    // Eight independent ALU ops in one segment finish in far fewer
    // cycles than eight dependent ones.
    Rig rig;
    rig.load(R"(
        addi x1, x0, 1
        addi x2, x0, 1
        addi x3, x0, 1
        addi x4, x0, 1
        addi x5, x0, 1
        addi x6, x0, 1
        addi x7, x0, 1
        ebreak
    )");
    const ActivationOutput ind = rig.run();

    Rig rig2;
    rig2.load(R"(
        addi x1, x0, 1
        addi x1, x1, 1
        addi x1, x1, 1
        addi x1, x1, 1
        addi x1, x1, 1
        addi x1, x1, 1
        addi x1, x1, 1
        ebreak
    )");
    const ActivationOutput dep = rig2.run();
    EXPECT_EQ(rig2.regs[1].value, 7u);
    // Dependent chain: one op per cycle; independent: all start at 0.
    EXPECT_LT(ind.end_cycle + 4, dep.end_cycle);
}

TEST(Activation, WawAndWarDoNotSerialize)
{
    // i1 overwrites x1 (WAW with i0); i2 reads the *final* x1. A lane
    // only changes for subsequent PEs, so i0's long-latency divide
    // cannot corrupt x1 for i2, and i1/i2 need not wait for it.
    Rig rig;
    rig.load(R"(
        div x1, x2, x3
        addi x1, x0, 9
        addi x4, x1, 0
        ebreak
    )");
    LaneFile regs{};
    regs[2].value = 100;
    regs[3].value = 5;
    const ActivationOutput out = rig.run(0x1000, regs);
    EXPECT_EQ(rig.regs[1].value, 9u);
    EXPECT_EQ(rig.regs[4].value, 9u);
    // x4 is ready long before the divide's 12-cycle latency...
    EXPECT_LT(rig.regs[4].ready, 10u);
    // ...but retirement (PC lane) still waits for the divide.
    EXPECT_GE(out.pc_exit, 12u);
}

TEST(Activation, ForwardSkipWithinCluster)
{
    Rig rig;
    rig.load(R"(
        addi x1, x0, 1
        beq x1, x1, target
        addi x2, x0, 99   # skipped
        addi x3, x0, 98   # skipped
        target:
        addi x4, x0, 5
        ebreak
    )");
    const ActivationOutput out = rig.run();
    EXPECT_EQ(out.exit, ActExit::Halt);
    EXPECT_EQ(rig.regs[2].value, 0u);  // never executed
    EXPECT_EQ(rig.regs[3].value, 0u);
    EXPECT_EQ(rig.regs[4].value, 5u);
    EXPECT_EQ(out.retired, 4u);  // addi, beq, addi, ebreak
    EXPECT_EQ(out.taken_branches, 1u);
}

TEST(Activation, NotTakenBranchFallsThrough)
{
    Rig rig;
    rig.load(R"(
        addi x1, x0, 1
        bne x1, x1, target
        addi x2, x0, 7
        target:
        ebreak
    )");
    const ActivationOutput out = rig.run();
    EXPECT_EQ(rig.regs[2].value, 7u);
    EXPECT_EQ(out.taken_branches, 0u);
}

TEST(Activation, BackwardBranchExitsCluster)
{
    Rig rig;
    rig.load(R"(
        head:
        addi x1, x1, 1
        bne x1, x2, head
        ebreak
    )");
    LaneFile regs{};
    regs[2].value = 5;
    const ActivationOutput out = rig.run(0x1000, regs);
    EXPECT_EQ(out.exit, ActExit::Redirect);
    EXPECT_EQ(out.exit_pc, 0x1000u);
    EXPECT_EQ(rig.regs[1].value, 1u);
}

TEST(Activation, FallThroughReportsNextLine)
{
    Rig rig;
    std::string src;
    for (int i = 0; i < 16; ++i)
        src += "addi x1, x1, 1\n";
    rig.load(src);
    const ActivationOutput out = rig.run();
    EXPECT_EQ(out.exit, ActExit::FellThrough);
    EXPECT_EQ(out.exit_pc, 0x1040u);
    EXPECT_EQ(rig.regs[1].value, 16u);
    EXPECT_EQ(out.retired, 16u);
}

TEST(Activation, SegmentBufferAddsLatency)
{
    // A value produced in segment 0 costs one extra cycle to reach
    // segment 1 (PEs 8..15).
    Rig rig;
    std::string src = "addi x1, x0, 42\n";  // PE 0, seg 0
    for (int i = 0; i < 7; ++i)
        src += "addi x20, x0, 0\n";         // filler PEs 1..7
    src += "addi x2, x1, 0\n";              // PE 8, seg 1
    src += "ebreak\n";
    rig.load(src);
    rig.run();
    // Producer done at 1; +1 segment crossing; consumer runs [2,3).
    EXPECT_EQ(rig.regs[2].value, 42u);
    EXPECT_EQ(rig.regs[2].ready, 3u);
}

TEST(Activation, StoreToLoadForwarding)
{
    Rig rig;
    rig.load(R"(
        sw x1, 0(x2)
        lw x3, 0(x2)
        ebreak
    )");
    LaneFile regs{};
    regs[1].value = 123;
    regs[2].value = 0x8000;
    rig.run(0x1000, regs);
    EXPECT_EQ(rig.regs[3].value, 123u);
    EXPECT_EQ(rig.stats.get("memlane_fwd"), 1.0);
    EXPECT_EQ(rig.tmc.mem().read32(0x8000), 123u);
}

TEST(Activation, MemLanesDisabledGoesToCache)
{
    Rig rig;
    rig.cfg.mem_lanes_enabled = false;
    rig.load(R"(
        sw x1, 0(x2)
        lw x3, 0(x2)
        ebreak
    )");
    LaneFile regs{};
    regs[1].value = 55;
    regs[2].value = 0x8000;
    rig.run(0x1000, regs);
    EXPECT_EQ(rig.regs[3].value, 55u);  // still correct
    EXPECT_EQ(rig.stats.get("memlane_fwd"), 0.0);
}

TEST(Activation, LoadWaitsForOlderStoreAddress)
{
    // The store's address depends on a slow divide; the younger load
    // must not issue before the store address resolves.
    Rig rig;
    rig.load(R"(
        div x2, x5, x6
        sw x1, 0(x2)
        lw x3, 64(x7)
        ebreak
    )");
    LaneFile regs{};
    regs[1].value = 9;
    regs[5].value = 0x10000;
    regs[6].value = 2;      // x2 = 0x8000 after 12-cycle divide
    regs[7].value = 0x9000; // disjoint address
    rig.run(0x1000, regs);
    EXPECT_EQ(rig.regs[3].value, 0u);
    // Load issue gated by store address (>= 12 cycles).
    EXPECT_GE(rig.regs[3].ready, 12u);
}

TEST(Activation, LineBufferHitIsFast)
{
    Rig rig;
    rig.load(R"(
        lw x3, 0(x2)
        lw x4, 4(x2)
        ebreak
    )");
    LaneFile regs{};
    regs[2].value = 0x8000;
    rig.run(0x1000, regs);
    EXPECT_EQ(rig.stats.get("linebuf_hits"), 1.0);  // second load
}

TEST(Activation, MidLineEntryDisablesEarlierPes)
{
    Rig rig;
    rig.load(R"(
        addi x1, x0, 1
        addi x2, x0, 2
        addi x3, x0, 3
        ebreak
    )");
    const ActivationOutput out = rig.run(0x1008);  // enter at 3rd inst
    EXPECT_EQ(rig.regs[1].value, 0u);
    EXPECT_EQ(rig.regs[2].value, 0u);
    EXPECT_EQ(rig.regs[3].value, 3u);
    EXPECT_EQ(out.retired, 2u);
}

TEST(Activation, InvalidInstructionFaults)
{
    Rig rig;
    rig.load(".word 0\n");
    const ActivationOutput out = rig.run();
    EXPECT_EQ(out.exit, ActExit::Halt);
    EXPECT_TRUE(out.faulted);
    EXPECT_EQ(out.retired, 0u);
}

TEST(Activation, JalLinksAndRedirects)
{
    Rig rig;
    rig.load(R"(
        jal x1, 0x2000
    )");
    const ActivationOutput out = rig.run();
    EXPECT_EQ(out.exit, ActExit::Redirect);
    EXPECT_EQ(out.exit_pc, 0x2000u);
    EXPECT_EQ(rig.regs[1].value, 0x1004u);
}
