/** Property-based differential tests: random control-flow-closed
 *  programs must leave identical architectural state on the golden
 *  interpreter and the DiAG timing model (every configuration). */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "isa/disasm.hpp"
#include "sim/fuzz.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::isa;
using namespace diag::sim;

namespace
{

/** Compare all architectural registers and the scratch buffer. */
void
expectStateMatch(const Program &p, GoldenSim &gold, DiagProcessor &proc,
                 u64 seed)
{
    for (unsigned r = 1; r < kNumRegs; ++r) {
        ASSERT_EQ(proc.finalReg(0, static_cast<RegId>(r)), gold.reg(r))
            << "seed " << seed << ": register " << regName(r);
    }
    const Addr buf = p.symbol("buf");
    for (Addr off = 0; off < 1024; off += 4) {
        ASSERT_EQ(proc.memory().read32(buf + off),
                  gold.memory().read32(buf + off))
            << "seed " << seed << ": buf+" << off;
    }
}

void
diffOne(u64 seed, const DiagConfig &cfg, bool use_fp)
{
    FuzzOptions opt;
    opt.seed = seed;
    opt.use_fp = use_fp;
    const std::string src = generateFuzzProgram(opt);
    const Program p = assembler::assemble(src);

    GoldenSim gold(p);
    const RunResult gr = gold.run(2'000'000);
    ASSERT_TRUE(gr.halted) << "seed " << seed << " did not halt (golden)";

    DiagProcessor proc(cfg);
    const sim::RunStats rs = proc.run(p);
    ASSERT_TRUE(rs.halted) << "seed " << seed << " did not halt (diag)";
    ASSERT_EQ(rs.instructions, gr.inst_count) << "seed " << seed;
    expectStateMatch(p, gold, proc, seed);
}

} // namespace

class DiagDiffSmall : public ::testing::TestWithParam<u64>
{};

TEST_P(DiagDiffSmall, IntegerProgramsMatchOnF4C2)
{
    diffOne(GetParam(), DiagConfig::f4c2(), false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagDiffSmall,
                         ::testing::Range<u64>(1, 21));

class DiagDiffLarge : public ::testing::TestWithParam<u64>
{};

TEST_P(DiagDiffLarge, IntegerProgramsMatchOnF4C32)
{
    diffOne(GetParam(), DiagConfig::f4c32(), false);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagDiffLarge,
                         ::testing::Range<u64>(100, 115));

class DiagDiffFp : public ::testing::TestWithParam<u64>
{};

TEST_P(DiagDiffFp, FloatingPointProgramsMatchOnF4C16)
{
    diffOne(GetParam(), DiagConfig::f4c16(), true);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiagDiffFp,
                         ::testing::Range<u64>(200, 215));

TEST(DiagDiff, TimingIsDeterministic)
{
    FuzzOptions opt;
    opt.seed = 7;
    const std::string src = generateFuzzProgram(opt);
    const Program p = assembler::assemble(src);
    DiagProcessor a(DiagConfig::f4c16());
    DiagProcessor b(DiagConfig::f4c16());
    const sim::RunStats ra = a.run(p);
    const sim::RunStats rb = b.run(p);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_EQ(ra.instructions, rb.instructions);
}
