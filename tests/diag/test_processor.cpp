/** End-to-end DiAG processor tests: serial programs, datapath reuse,
 *  SIMT thread pipelining, multi-threaded rings. */
#include <gtest/gtest.h>

#include <sstream>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::core;
using namespace diag::isa;

namespace
{

Program
asmProgram(const std::string &src)
{
    return assembler::assemble(src);
}

} // namespace

TEST(DiagProcessor, SumLoopMatchesGolden)
{
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 101
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            bne a1, a2, loop
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c2());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), 5050u);
    EXPECT_GT(rs.cycles, 0u);
    EXPECT_GT(rs.instructions, 300u);
}

TEST(DiagProcessor, LoopReusesDatapath)
{
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 100
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c2());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    // ~99 backward branches re-activate an already-loaded cluster.
    EXPECT_GT(rs.counters.get("reuse_activations"), 90.0);
    // Decodes stay bounded: the loop line is decoded once, not 100x.
    EXPECT_LT(rs.counters.get("decodes"), 100.0);
}

TEST(DiagProcessor, ReuseEliminatesFetches)
{
    // Table 1's "DiAG (Reuse)" row: steady-state loop iterations cost
    // no fetch and no decode.
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 1000
        loop:
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    const double fetches = rs.counters.get("iline_fetches");
    const double activations = rs.counters.get("activations");
    EXPECT_LT(fetches, 10.0);
    EXPECT_GT(activations, 990.0);
}

TEST(DiagProcessor, MultiClusterProgram)
{
    // A program body longer than one cluster (16 instructions) flows
    // across clusters through the lane latches.
    std::string src = "_start:\n    li a0, 0\n";
    for (int i = 0; i < 40; ++i)
        src += "    addi a0, a0, 1\n";
    src += "    ebreak\n";
    const Program p = asmProgram(src);
    DiagProcessor proc(DiagConfig::f4c16());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), 40u);
}

TEST(DiagProcessor, MemoryKernelMatchesGolden)
{
    const std::string src = R"(
        .data
        a: .space 256
        b: .space 256
        .text
        _start:
            la t0, a
            la t1, b
            li t2, 0
            li t3, 64
        init:
            slli t4, t2, 2
            add t5, t0, t4
            sw t2, 0(t5)
            addi t2, t2, 1
            bne t2, t3, init
            li t2, 0
        copy:
            slli t4, t2, 2
            add t5, t0, t4
            lw t6, 0(t5)
            slli t6, t6, 1
            add t5, t1, t4
            sw t6, 0(t5)
            addi t2, t2, 1
            bne t2, t3, copy
            la t0, b
            lw a0, 252(t0)
            ebreak
    )";
    const Program p = asmProgram(src);

    sim::GoldenSim gold(p);
    gold.run();

    DiagProcessor proc(DiagConfig::f4c16());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), gold.reg(10));
    EXPECT_EQ(proc.finalReg(0, 10), 126u);  // 2 * 63
    // Memory contents match.
    for (Addr off = 0; off < 256; off += 4) {
        const Addr addr = p.symbol("b") + off;
        EXPECT_EQ(proc.memory().read32(addr), gold.memory().read32(addr));
    }
}

TEST(DiagProcessor, MorePesHelpIlp)
{
    // A wide independent-operation kernel should not run slower with
    // more clusters (more PEs => more in-flight instructions).
    std::string src = "_start:\n";
    for (int rep = 0; rep < 8; ++rep) {
        for (int r = 5; r < 29; ++r)
            src += "    addi x" + std::to_string(r) + ", x" +
                   std::to_string(r) + ", 1\n";
    }
    src += "    ebreak\n";
    const Program p = asmProgram(src);

    DiagProcessor small(DiagConfig::f4c2());
    const sim::RunStats rs_small = small.run(p);
    DiagProcessor large(DiagConfig::f4c32());
    const sim::RunStats rs_large = large.run(p);
    EXPECT_TRUE(rs_small.halted);
    EXPECT_TRUE(rs_large.halted);
    EXPECT_LE(rs_large.cycles, rs_small.cycles);
}

TEST(DiagProcessor, SimtPipelineMatchesGoldenAndSpeedsUp)
{
    // Vector scale: out[i] = 3 * in[i] over 64 elements, expressed as
    // a simt region (rc = byte offset, step = 4, end = 256).
    const std::string src = R"(
        .data
        vin: .space 256
        vout: .space 256
        .text
        _start:
            # initialize vin[i] = i
            la t0, vin
            li t1, 0
            li t2, 64
        init:
            slli t3, t1, 2
            add t4, t0, t3
            sw t1, 0(t4)
            addi t1, t1, 1
            bne t1, t2, init
            # simt region
            la s2, vin
            la s3, vout
            li a0, 0        # rc: byte offset
            li a1, 4        # step
            li a2, 256      # end
        head:
            simt_s a0, a1, a2, 1
            add t5, s2, a0
            lw t6, 0(t5)
            slli t6, t6, 1
            add t6, t6, a0  # 2*i + byte_off... make it data-dependent
            add s4, s3, a0
            sw t6, 0(s4)
            simt_e a0, a2, head
            la t0, vout
            lw a0, 252(t0)
            ebreak
    )";
    const Program p = asmProgram(src);

    sim::GoldenSim gold(p);
    const sim::RunResult gr = gold.run();
    EXPECT_TRUE(gr.halted);

    DiagConfig simt_cfg = DiagConfig::f4c32();
    DiagProcessor with_simt(simt_cfg);
    const sim::RunStats rs_simt = with_simt.run(p);
    EXPECT_TRUE(rs_simt.halted);
    EXPECT_GT(rs_simt.counters.get("simt_regions"), 0.0);
    EXPECT_EQ(rs_simt.counters.get("simt_threads"), 64.0);
    EXPECT_EQ(with_simt.finalReg(0, 10), gold.reg(10));
    for (Addr off = 0; off < 256; off += 4) {
        const Addr addr = p.symbol("vout") + off;
        EXPECT_EQ(with_simt.memory().read32(addr),
                  gold.memory().read32(addr))
            << "vout offset " << off;
    }

    DiagConfig no_simt = DiagConfig::f4c32();
    no_simt.simt_enabled = false;
    DiagProcessor without(no_simt);
    const sim::RunStats rs_plain = without.run(p);
    EXPECT_TRUE(rs_plain.halted);
    EXPECT_EQ(without.finalReg(0, 10), gold.reg(10));
    // Thread pipelining must beat scalar loop execution.
    EXPECT_LT(rs_simt.cycles, rs_plain.cycles);
}

TEST(DiagProcessor, SimtRegionTooBigFallsBack)
{
    // A region with a backward branch inside cannot pipeline; the
    // processor must still produce correct results via scalar fallback.
    const std::string src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 4
            li s0, 0
        head:
            simt_s a0, a1, a2, 1
            li t0, 3
        inner:
            addi s0, s0, 1
            addi t0, t0, -1
            bnez t0, inner
            simt_e a0, a2, head
            ebreak
    )";
    const Program p = asmProgram(src);
    sim::GoldenSim gold(p);
    gold.run();

    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_GT(rs.counters.get("simt_fallbacks"), 0.0);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_EQ(proc.finalReg(0, 8), gold.reg(8));  // s0 == 12
    EXPECT_EQ(gold.reg(8), 12u);
}

TEST(DiagProcessor, MultiThreadedRings)
{
    // Two threads sum disjoint halves of an array on separate rings.
    const std::string src = R"(
        .data
        arr: .space 512
        out: .space 8
        .text
        _start:
            # a0 = thread id (set via init_regs)
            la t0, arr
            li t1, 64          # elements per thread
            mul t2, a0, t1
            slli t2, t2, 2
            add t0, t0, t2     # base of my half
            li t3, 0           # sum
            li t4, 0
        loop:
            lw t5, 0(t0)
            add t3, t3, t5
            addi t0, t0, 4
            addi t4, t4, 1
            bne t4, t1, loop
            la t6, out
            slli t2, a0, 2
            add t6, t6, t2
            sw t3, 0(t6)
            ebreak
    )";
    const Program p = asmProgram(src);

    DiagProcessor proc(DiagConfig::f4c32MultiRing());
    proc.loadProgram(p);
    // arr[i] = i
    for (u32 i = 0; i < 128; ++i)
        proc.memory().write32(p.symbol("arr") + 4 * i, i);
    std::vector<ThreadSpec> threads;
    for (u32 t = 0; t < 2; ++t)
        threads.push_back({p.entry, {{RegId{10}, t}}});
    const sim::RunStats rs = proc.runThreads(p, threads);
    EXPECT_TRUE(rs.halted);
    const u32 sum0 = proc.memory().read32(p.symbol("out"));
    const u32 sum1 = proc.memory().read32(p.symbol("out") + 4);
    EXPECT_EQ(sum0, 63u * 64 / 2);
    EXPECT_EQ(sum1, (64u + 127u) * 64 / 2);
    EXPECT_EQ(rs.counters.get("threads"), 2.0);
}

TEST(DiagProcessor, IntegerOnlyConfigRunsIntCode)
{
    const Program p = asmProgram(R"(
        _start:
            li a0, 21
            slli a0, a0, 1
            ebreak
    )");
    DiagProcessor proc(DiagConfig::i4c2());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(proc.finalReg(0, 10), 42u);
}

TEST(DiagProcessor, StallCountersPopulated)
{
    // A pointer-chase over a large footprint produces memory stalls.
    const std::string src = R"(
        .data
        arr: .space 65536
        .text
        _start:
            la t0, arr
            li t1, 0
            li t2, 1024
        loop:
            slli t3, t1, 6      # stride 64B: every load a new line
            add t4, t0, t3
            lw t5, 0(t4)
            add t6, t6, t5
            addi t1, t1, 1
            bne t1, t2, loop
            ebreak
    )";
    const Program p = asmProgram(src);
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_GT(rs.counters.get("mem_stall_cycles"), 0.0);
    EXPECT_GT(rs.counters.get("ctrl_stall_cycles"), 0.0);
    EXPECT_GT(rs.counters.get("dram_loads"), 500.0);
}

// --- Per-run isolation regressions (DESIGN.md §15). ----------------

namespace
{

std::string
countersJson(const sim::RunStats &rs)
{
    std::ostringstream os;
    rs.counters.dumpJson(os);
    return os.str();
}

} // namespace

TEST(DiagProcessor, RunningDifferentProgramReloadsMemory)
{
    // A processor that already ran program A must not execute A's
    // stale image when handed program B (the old `if
    // (!program_loaded_)` guard skipped the reload entirely).
    const Program a = asmProgram(R"(
        _start:
            li a0, 111
            ebreak
    )");
    const Program b = asmProgram(R"(
        _start:
            li a0, 222
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c2());
    ASSERT_TRUE(proc.run(a).halted);
    EXPECT_EQ(proc.finalReg(0, 10), 111u);
    ASSERT_TRUE(proc.run(b).halted);
    EXPECT_EQ(proc.finalReg(0, 10), 222u);

    // A fresh processor running only B is the reference; the reloaded
    // processor must report the very same cycles and counters.
    DiagProcessor fresh(DiagConfig::f4c2());
    const sim::RunStats rf = fresh.run(b);
    DiagProcessor twice(DiagConfig::f4c2());
    ASSERT_TRUE(twice.run(a).halted);
    const sim::RunStats rs = twice.run(b);
    EXPECT_EQ(rs.cycles, rf.cycles);
    EXPECT_EQ(countersJson(rs), countersJson(rf));
}

TEST(DiagProcessor, RunTwiceEqualsRunOnce)
{
    // Counters are per-run deltas: the second run of the same program
    // must report exactly what a fresh processor's first run reports
    // (the old code folded run 1's counters and cache state into run
    // 2's RunStats).
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 64
        loop:
            slli t0, a0, 2
            sw a0, 0x400(t0)
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    DiagProcessor fresh(DiagConfig::f4c16());
    const sim::RunStats first = fresh.run(p);

    DiagProcessor reused(DiagConfig::f4c16());
    const sim::RunStats r1 = reused.run(p);
    const sim::RunStats r2 = reused.run(p);
    EXPECT_EQ(countersJson(r1), countersJson(first));
    EXPECT_EQ(r2.cycles, first.cycles);
    EXPECT_EQ(r2.instructions, first.instructions);
    EXPECT_EQ(countersJson(r2), countersJson(first));
}

TEST(DiagProcessor, RerunAfterWarmCachesStaysWarm)
{
    // loadProgram + warmCaches + two runs: the second run re-warms to
    // the same post-warm state, so both runs are identical.
    const Program p = asmProgram(R"(
        _start:
            li a0, 0
            li a1, 32
            li a2, 0
        loop:
            slli t0, a0, 2
            lw t1, 0x400(t0)
            add a2, a2, t1
            addi a0, a0, 1
            bne a0, a1, loop
            ebreak
    )");
    DiagProcessor proc(DiagConfig::f4c16());
    proc.loadProgram(p);
    proc.warmCaches();
    const sim::RunStats r1 = proc.run(p);
    const sim::RunStats r2 = proc.run(p);
    EXPECT_EQ(r2.cycles, r1.cycles);
    EXPECT_EQ(countersJson(r2), countersJson(r1));
}
