/** SIMT thread-pipelining tests: region validation, scalar fallback,
 *  replication, launch-interval pacing, and lane-propagation rules. */
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "diag/processor.hpp"
#include "sim/golden.hpp"

using namespace diag;
using namespace diag::core;

namespace
{

/** vecout[i] = 2*vecin[i] + i over n elements via a simt region. */
std::string
vecKernel(unsigned interval)
{
    return R"(
        .data
        .org 0x100000
        vin: .space 1024
        .org 0x101000
        vout: .space 1024
        .text
        _start:
            li t0, 0x100000
            li t1, 0
            li t2, 256
        init:
            slli t3, t1, 2
            add t4, t0, t3
            sw t1, 0(t4)
            addi t1, t1, 1
            bne t1, t2, init
            li s2, 0x100000
            li s3, 0x101000
            li a2, 0
            li a3, 4
            li a4, 1024
        head:
            simt_s a2, a3, a4, )" + std::to_string(interval) + R"(
            add t5, s2, a2
            lw t6, 0(t5)
            slli t0, t6, 1
            add t6, t0, a2
            add t5, s3, a2
            sw t6, 0(t5)
            simt_e a2, a4, head
            ebreak
    )";
}

sim::RunStats
runOn(const DiagConfig &cfg, const std::string &src)
{
    DiagProcessor proc(cfg);
    return proc.run(assembler::assemble(src));
}

} // namespace

TEST(Simt, PipelineProducesGoldenOutput)
{
    const Program p = assembler::assemble(vecKernel(1));
    sim::GoldenSim gold(p);
    gold.run();

    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.counters.get("simt_regions"), 1.0);
    EXPECT_EQ(rs.counters.get("simt_threads"), 256.0);
    for (u32 i = 0; i < 256; ++i)
        ASSERT_EQ(proc.memory().read32(0x101000 + 4 * i),
                  gold.memory().read32(0x101000 + 4 * i))
            << "element " << i;
}

TEST(Simt, ReplicatesAcrossFreeClusters)
{
    // A one-to-two-line region in a 32-cluster ring replicates many
    // times; in a 4-cluster ring only once or twice.
    const std::string src = vecKernel(1);
    const sim::RunStats big = runOn(DiagConfig::f4c32(), src);
    DiagConfig small = DiagConfig::f4c32();
    small.num_rings = 8;  // 4 clusters per ring
    small.name = "F4C32-8x4";
    const sim::RunStats few = runOn(small, src);
    EXPECT_GT(big.counters.get("simt_replicas"), 4.0);
    EXPECT_LE(few.counters.get("simt_replicas"), 4.0);
    EXPECT_GT(big.counters.get("simt_replicas"),
              few.counters.get("simt_replicas"));
}

TEST(Simt, LaunchIntervalPacesThreads)
{
    // interval=8 must be slower than interval=1 (launch-rate-bound).
    const sim::RunStats fast = runOn(DiagConfig::f4c32(), vecKernel(1));
    const sim::RunStats slow = runOn(DiagConfig::f4c32(), vecKernel(8));
    EXPECT_LT(fast.cycles + 200, slow.cycles);
    EXPECT_EQ(slow.counters.get("simt_threads"), 256.0);
}

TEST(Simt, BackwardBranchInRegionFallsBackToScalar)
{
    const char *src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 8
            li s0, 0
        head:
            simt_s a0, a1, a2, 1
            li t0, 2
        inner:
            addi s0, s0, 1
            addi t0, t0, -1
            bnez t0, inner
            simt_e a0, a2, head
            ebreak
    )";
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(assembler::assemble(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_GT(rs.counters.get("simt_fallbacks"), 0.0);
    EXPECT_EQ(proc.finalReg(0, 8), 16u);  // 8 trips x 2 inner
}

TEST(Simt, IndirectJumpInRegionFallsBack)
{
    const char *src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 4
            la s1, target
        head:
            simt_s a0, a1, a2, 1
            jalr x0, s1, 0
        target:
            addi s0, s0, 1
            simt_e a0, a2, head
            ebreak
    )";
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(assembler::assemble(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_EQ(proc.finalReg(0, 8), 4u);
}

TEST(Simt, RegionTooBigForRingFallsBack)
{
    // A region longer than a 2-cluster ring (32 instructions).
    std::string src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 4
        head:
            simt_s a0, a1, a2, 1
)";
    for (int i = 0; i < 40; ++i)
        src += "            addi s0, s0, 1\n";
    src += R"(
            simt_e a0, a2, head
            ebreak
    )";
    DiagConfig cfg = DiagConfig::f4c32();
    cfg.num_rings = 16;  // 2 clusters per ring
    DiagProcessor proc(cfg);
    const sim::RunStats rs = proc.run(assembler::assemble(src));
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_EQ(proc.finalReg(0, 8), 160u);  // scalar fallback: 4 x 40
}

TEST(Simt, ZeroAndSingleTripCounts)
{
    // Do-while semantics: the body always runs at least once, even if
    // rc already exceeds the bound.
    const char *src = R"(
        _start:
            li a0, 50
            li a1, 1
            li a2, 8    # end < rc: still one trip
        head:
            simt_s a0, a1, a2, 1
            addi s0, a0, 1     # s0 = rc + 1 (no loop-carried dep)
            simt_e a0, a2, head
            ebreak
    )";
    const Program p = assembler::assemble(src);
    sim::GoldenSim gold(p);
    gold.run();
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_EQ(proc.finalReg(0, 8), gold.reg(8));
    EXPECT_EQ(gold.reg(8), 51u);
    EXPECT_EQ(rs.counters.get("simt_threads"), 1.0);
    EXPECT_EQ(proc.finalReg(0, 10), 51u);  // rc advanced once
}

TEST(Simt, NegativeStepLoops)
{
    // rc counts down by 4; each thread stores its rc to out[rc].
    const char *src = R"(
        .data
        .org 0x100000
        out: .space 64
        .text
        _start:
            li s4, 0x100000
            li a0, 40
            li a1, -4
            li a2, 0
        head:
            simt_s a0, a1, a2, 1
            add t0, s4, a0
            sw a0, 0(t0)
            simt_e a0, a2, head
            ebreak
    )";
    const Program p = assembler::assemble(src);
    sim::GoldenSim gold(p);
    gold.run();
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_EQ(rs.counters.get("simt_regions"), 1.0);
    EXPECT_EQ(rs.counters.get("simt_threads"), 10.0);
    for (u32 off = 4; off <= 40; off += 4)
        EXPECT_EQ(proc.memory().read32(0x100000 + off), off);
    EXPECT_EQ(proc.finalReg(0, 10), gold.reg(10));  // rc ends at 0
}

TEST(Simt, LoopCarriedRegisterDependenceIsRejected)
{
    // An accumulator (read-before-write of s0) cannot be pipelined:
    // each thread would see only the simt_s snapshot. The scanner must
    // fall back to scalar execution, which matches golden.
    const char *src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 10
            li s0, 0
        head:
            simt_s a0, a1, a2, 1
            add s0, s0, a0
            simt_e a0, a2, head
            ebreak
    )";
    const Program p = assembler::assemble(src);
    sim::GoldenSim gold(p);
    gold.run();
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_GT(rs.counters.get("simt_fallbacks"), 0.0);
    EXPECT_EQ(proc.finalReg(0, 8), gold.reg(8));
    EXPECT_EQ(gold.reg(8), 45u);
}

TEST(Simt, ConditionallyWrittenLiveInIsRejected)
{
    // t2 is written only on one path but read unconditionally: a
    // thread could observe the previous iteration's value in scalar
    // semantics, so the region must not be pipelined.
    const char *src = R"(
        .data
        .org 0x100000
        out: .space 64
        .text
        _start:
            li s4, 0x100000
            li a0, 0
            li a1, 4
            li a2, 40
            li t2, 7
        head:
            simt_s a0, a1, a2, 1
            andi t0, a0, 4
            beqz t0, skip
            addi t2, a0, 100
        skip:
            add t1, s4, a0
            sw t2, 0(t1)
            simt_e a0, a2, head
            ebreak
    )";
    const Program p = assembler::assemble(src);
    sim::GoldenSim gold(p);
    gold.run();
    DiagProcessor proc(DiagConfig::f4c32());
    const sim::RunStats rs = proc.run(p);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    for (u32 off = 0; off < 40; off += 4)
        EXPECT_EQ(proc.memory().read32(0x100000 + off),
                  gold.memory().read32(0x100000 + off))
            << "offset " << off;
}

TEST(Simt, OnlyLastThreadLanesPropagate)
{
    // A body register written per thread must hold the LAST thread's
    // value after the region (paper §5.4: simt_e "does not propagate
    // all but the last thread's register lanes").
    const char *src = R"(
        _start:
            li a0, 0
            li a1, 1
            li a2, 16
        head:
            simt_s a0, a1, a2, 1
            slli s1, a0, 3    # s1 = 8 * rc, unique per thread
            simt_e a0, a2, head
            mv s2, s1         # observe after the region
            ebreak
    )";
    DiagProcessor proc(DiagConfig::f4c32());
    proc.run(assembler::assemble(src));
    EXPECT_EQ(proc.finalReg(0, 18), 8u * 15);  // last thread rc = 15
}

TEST(Simt, DisabledConfigRunsScalar)
{
    DiagConfig cfg = DiagConfig::f4c32();
    cfg.simt_enabled = false;
    const sim::RunStats rs = runOn(cfg, vecKernel(1));
    EXPECT_TRUE(rs.halted);
    EXPECT_EQ(rs.counters.get("simt_regions"), 0.0);
    EXPECT_EQ(rs.counters.get("simt_fallbacks"), 0.0);
}
