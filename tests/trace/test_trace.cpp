/**
 * @file
 * The tracing subsystem's contracts: ring-buffer drop semantics, event
 * mask parsing/filtering, zero architectural overhead (a traced run is
 * cycle- and counter-identical to an untraced one), --jobs trace
 * determinism through the parallel harness, Chrome-trace export
 * sanity, time-series accounting, and bottleneck attribution.
 */
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "asm/assembler.hpp"
#include "harness/runner.hpp"
#include "harness/validate.hpp"
#include "trace/attribution.hpp"
#include "trace/export.hpp"
#include "workloads/workload.hpp"

using namespace diag;
using namespace diag::trace;

namespace
{

TEST(TraceSink, RingBufferDropsOldestOnOverflow)
{
    RingBufferSink sink(4);
    for (u16 i = 0; i < 6; ++i)
        sink.record({EventKind::Activation, 0, i, 0, i, 1, 0});
    EXPECT_EQ(sink.dropped(), 2u);
    const std::vector<TraceEvent> ev = sink.events();
    ASSERT_EQ(ev.size(), 4u);
    // Oldest two (unit 0, 1) dropped; survivors in record order.
    for (u16 i = 0; i < 4; ++i)
        EXPECT_EQ(ev[i].unit, i + 2);
}

TEST(TraceEvents, ParseEventMask)
{
    u32 mask = 0;
    std::string bad;
    EXPECT_TRUE(parseEventMask("activation,reuse-hit", mask, bad));
    EXPECT_EQ(mask, eventBit(EventKind::Activation) |
                        eventBit(EventKind::ReuseHit));
    EXPECT_TRUE(parseEventMask("all", mask, bad));
    EXPECT_EQ(mask, kAllEvents);
    EXPECT_TRUE(parseEventMask("default", mask, bad));
    EXPECT_EQ(mask, kDefaultEvents);
    EXPECT_FALSE(parseEventMask("activation,bogus", mask, bad));
    EXPECT_EQ(bad, "bogus");
}

TEST(TraceEvents, MaskFiltersRecording)
{
    TraceConfig tc;
    tc.event_mask = eventBit(EventKind::Activation);
    Tracer trc(tc);
    trc.activation(0, 0, 0x1000, 10, 20, false, 4);
    trc.laneWrite(0, 3, 0x1000, 12, 7);  // masked out
    ASSERT_EQ(trc.sink().events().size(), 1u);
    EXPECT_EQ(trc.sink().events()[0].kind, EventKind::Activation);
}

/** Run @p name on the diag engine, optionally traced. */
harness::EngineRun
runWorkload(const std::string &name, bool simt,
            const TraceConfig *tc)
{
    const workloads::Workload w = workloads::findWorkload(name);
    harness::RunSpec spec;
    spec.threads = 1;
    spec.use_simt = simt;
    spec.trace = tc;
    return harness::runOnDiag(core::DiagConfig::f4c32(), w, spec);
}

TEST(TraceOverhead, TracedRunIsCycleAndCounterIdentical)
{
    TraceConfig tc;
    tc.event_mask = kAllEvents;
    tc.metrics_stride = 256;
    const harness::EngineRun plain = runWorkload("kmeans", true,
                                                 nullptr);
    const harness::EngineRun traced = runWorkload("kmeans", true, &tc);
    EXPECT_FALSE(plain.trace);
    ASSERT_TRUE(traced.trace);
    EXPECT_GT(traced.trace->sink().events().size(), 0u);
    // The tracer is purely observational: every cycle the model
    // computes, and every counter it increments, must be unchanged.
    EXPECT_EQ(traced.stats.cycles, plain.stats.cycles);
    EXPECT_EQ(traced.stats.instructions, plain.stats.instructions);
    EXPECT_EQ(traced.stats.counters.all(), plain.stats.counters.all());
}

TEST(TraceDeterminism, JobsOneAndManyProduceIdenticalTraces)
{
    const workloads::Workload km = workloads::findWorkload("kmeans");
    const workloads::Workload lud = workloads::findWorkload("lud");
    TraceConfig tc;
    tc.metrics_stride = 512;
    std::vector<harness::MatrixCell> cells;
    for (const workloads::Workload *w : {&km, &lud}) {
        harness::MatrixCell c;
        c.w = w;
        c.spec.use_simt = !w->asm_simt.empty();
        c.spec.trace = &tc;
        c.diag_cfg = core::DiagConfig::f4c32();
        cells.push_back(c);
    }
    const auto serial = harness::runMatrix(cells, 1);
    const auto par = harness::runMatrix(cells, 4);
    ASSERT_EQ(serial.size(), cells.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        ASSERT_TRUE(serial[i].trace && par[i].trace) << "cell " << i;
        const TraceMeta meta{cells[i].w->name, "F4C32",
                             cells[i].spec.use_simt};
        std::ostringstream a, b, ma, mb;
        writeChromeTrace(a, *serial[i].trace, meta);
        writeChromeTrace(b, *par[i].trace, meta);
        EXPECT_EQ(a.str(), b.str()) << "cell " << i;
        writeMetricsJson(ma, *serial[i].trace, meta);
        writeMetricsJson(mb, *par[i].trace, meta);
        EXPECT_EQ(ma.str(), mb.str()) << "cell " << i;
    }
}

TEST(TraceExport, ChromeTraceShapeAndTracks)
{
    TraceConfig tc;
    tc.event_mask = kAllEvents;
    const harness::EngineRun run = runWorkload("kmeans", true, &tc);
    ASSERT_TRUE(run.trace);
    std::ostringstream os;
    writeChromeTrace(os, *run.trace, {"kmeans", "F4C32", true});
    const std::string json = os.str();
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 2), "}\n");
    // Track metadata and at least one of each hot event family.
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"ring0\""), std::string::npos);
    EXPECT_NE(json.find("\"activation\""), std::string::npos);
    EXPECT_NE(json.find("\"simt-stage\""), std::string::npos);
    EXPECT_NE(json.find("\"region-enter\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"kmeans\""),
              std::string::npos);
    // Rendering is a pure function of the tracer: dump twice, equal.
    std::ostringstream again;
    writeChromeTrace(again, *run.trace, {"kmeans", "F4C32", true});
    EXPECT_EQ(json, again.str());
}

TEST(TraceMetrics, BucketedRetiredSumsToInstructions)
{
    TraceConfig tc;
    tc.metrics_stride = 128;
    const harness::EngineRun run = runWorkload("kmeans", true, &tc);
    ASSERT_TRUE(run.trace);
    const auto &samples = run.trace->metrics().samples();
    ASSERT_FALSE(samples.empty());
    double retired = 0;
    bool saw_region = false;
    for (const MetricsSample &s : samples) {
        retired += s.retired;
        saw_region = saw_region || s.region != 0;
    }
    EXPECT_DOUBLE_EQ(retired,
                     static_cast<double>(run.stats.instructions));
    EXPECT_TRUE(saw_region);  // the simt region tags its buckets
}

TEST(TraceAttribution, NamesABottleneckForEveryPipelinedRegion)
{
    TraceConfig tc;
    const harness::EngineRun run = runWorkload("kmeans", true, &tc);
    const workloads::Workload w = workloads::findWorkload("kmeans");
    const core::DiagConfig cfg = core::DiagConfig::f4c32();
    const Program prog = assembler::assemble(w.asm_simt);
    const analysis::ProgramAnalysis an = analysis::analyzeProgram(
        prog, harness::lintOptionsFor(cfg));
    const AttributionReport rep = attributeRegions(
        an.bound, run.stats.counters,
        static_cast<double>(run.stats.cycles),
        static_cast<double>(run.stats.instructions));
    ASSERT_FALSE(rep.regions.empty());
    double region_cycles = 0;
    for (const RegionAttribution &r : rep.regions) {
        ASSERT_TRUE(r.pipelined);
        EXPECT_FALSE(r.bottleneck.empty());
        EXPECT_FALSE(r.dominant.empty());
        EXPECT_GT(r.measured, 0.0);
        // The decomposition must sum to the model's prediction.
        EXPECT_NEAR(r.fill_cycles + r.steady_cycles + r.setup_cycles,
                    r.predicted, 1e-6);
        region_cycles += r.measured;
    }
    EXPECT_DOUBLE_EQ(rep.region_cycles, region_cycles);
    EXPECT_DOUBLE_EQ(rep.serial_cycles + rep.region_cycles,
                     rep.total_cycles);
    // Both renderers are deterministic.
    EXPECT_EQ(renderAttributionJson(rep), renderAttributionJson(rep));
    EXPECT_FALSE(renderAttribution(rep).empty());
}

} // namespace
