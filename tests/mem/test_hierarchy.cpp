/** Hierarchy tests: level escalation, shared-L2 behaviour, bus model. */
#include <gtest/gtest.h>

#include "mem/bus.hpp"
#include "mem/hierarchy.hpp"

using namespace diag;
using namespace diag::mem;

namespace
{

MemParams
tinyParams()
{
    MemParams p;
    p.l1i = {4 * 1024, 1, 64, 1, 2, 1};
    p.l1d = {4 * 1024, 2, 64, 2, 4, 1};
    p.l2 = {64 * 1024, 4, 64, 4, 20, 2};
    p.dram = {120, 8};
    return p;
}

} // namespace

TEST(Hierarchy, ColdAccessGoesToDram)
{
    MemHierarchy mh(tinyParams(), 1);
    const MemResult r = mh.dataAccess(0, 0x1000, false, 0);
    EXPECT_EQ(r.level, ServedBy::Dram);
    // l1 tag check (4) + l2 tag check (20) + dram (120) + fill
    EXPECT_GT(r.done, 120u);
}

TEST(Hierarchy, SecondAccessHitsL1)
{
    MemHierarchy mh(tinyParams(), 1);
    const MemResult cold = mh.dataAccess(0, 0x1000, false, 0);
    const MemResult warm = mh.dataAccess(0, 0x1000, false, cold.done);
    EXPECT_EQ(warm.level, ServedBy::L1);
    EXPECT_EQ(warm.done, cold.done + 4);
}

TEST(Hierarchy, L1EvictionStillHitsL2)
{
    MemParams p = tinyParams();
    MemHierarchy mh(p, 1);
    // L1D: 4KB 2-way = 32 sets. Lines 0x1000, 0x1800, 0x2000 share set 0
    // (set stride = 32 * 64 = 2KB).
    mh.dataAccess(0, 0x1000, false, 0);
    mh.dataAccess(0, 0x1800, false, 1000);
    mh.dataAccess(0, 0x2000, false, 2000);  // evicts 0x1000 from L1
    const MemResult r = mh.dataAccess(0, 0x1000, false, 3000);
    EXPECT_EQ(r.level, ServedBy::L2);
}

TEST(Hierarchy, PortsHavePrivateL1s)
{
    MemHierarchy mh(tinyParams(), 2);
    mh.dataAccess(0, 0x1000, false, 0);
    // Port 1 misses its own L1 but hits the shared L2.
    const MemResult r = mh.dataAccess(1, 0x1000, false, 1000);
    EXPECT_EQ(r.level, ServedBy::L2);
}

TEST(Hierarchy, InstructionFetchSeparateFromData)
{
    MemHierarchy mh(tinyParams(), 1);
    mh.fetchLine(0, 0x1000, 0);
    const MemResult refetch = mh.fetchLine(0, 0x1000, 1000);
    EXPECT_EQ(refetch.level, ServedBy::L1);
    // Data side is cold for the same address.
    const MemResult data = mh.dataAccess(0, 0x1000, false, 2000);
    EXPECT_EQ(data.level, ServedBy::L2);  // L2 was filled by the ifetch
}

TEST(Hierarchy, DramChannelContention)
{
    MemParams p = tinyParams();
    MemHierarchy mh(p, 1);
    // Two concurrent cold misses to different L2 banks: second DRAM
    // access waits for the channel occupancy of the first.
    const MemResult a = mh.dataAccess(0, 0x10000, false, 0);
    const MemResult b = mh.dataAccess(0, 0x20040, false, 0);
    EXPECT_EQ(a.level, ServedBy::Dram);
    EXPECT_EQ(b.level, ServedBy::Dram);
    EXPECT_GE(b.done, a.done);
    EXPECT_GE(b.done - a.done, p.dram.line_occupancy);
}

TEST(Hierarchy, ResetRestoresColdState)
{
    MemHierarchy mh(tinyParams(), 1);
    mh.dataAccess(0, 0x1000, false, 0);
    mh.reset();
    const MemResult r = mh.dataAccess(0, 0x1000, false, 0);
    EXPECT_EQ(r.level, ServedBy::Dram);
}

TEST(Hierarchy, MergedStats)
{
    MemHierarchy mh(tinyParams(), 2);
    mh.dataAccess(0, 0x1000, false, 0);
    mh.dataAccess(1, 0x2000, false, 0);
    StatGroup out("mem");
    mh.mergeStats(out);
    EXPECT_EQ(out.get("l1d.misses"), 2.0);
    EXPECT_EQ(out.get("l2.misses"), 2.0);
    EXPECT_EQ(out.get("dram.accesses"), 2.0);
}

TEST(Bus, FcfsOccupancy)
{
    Bus bus("bus");
    EXPECT_EQ(bus.request(10, 2), 10u);
    EXPECT_EQ(bus.request(10, 2), 12u);   // queued behind first
    EXPECT_EQ(bus.request(11, 2), 14u);
    EXPECT_FALSE(bus.busyAt(100));
    EXPECT_TRUE(bus.busyAt(15));
    EXPECT_EQ(bus.stats().get("transfers"), 3.0);
    bus.reset();
    EXPECT_EQ(bus.request(0, 1), 0u);
}
