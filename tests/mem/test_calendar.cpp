/** BusyCalendar tests: order-tolerant reservations, gap filling,
 *  probe/reserve agreement, capacity bounding. */
#include <gtest/gtest.h>

#include "common/calendar.hpp"

using namespace diag;

TEST(Calendar, MonotonicRequestsBehaveLikeBusyUntil)
{
    BusyCalendar cal;
    EXPECT_EQ(cal.reserve(10, 2), 10u);
    EXPECT_EQ(cal.reserve(10, 2), 12u);
    EXPECT_EQ(cal.reserve(11, 2), 14u);
    EXPECT_EQ(cal.reserve(100, 1), 100u);
}

TEST(Calendar, EarlyRequestSlotsIntoGap)
{
    BusyCalendar cal;
    // A far-future reservation must not block an earlier request.
    EXPECT_EQ(cal.reserve(1000, 5), 1000u);
    EXPECT_EQ(cal.reserve(10, 2), 10u);
    // The gap between 12 and 1000 is still usable.
    EXPECT_EQ(cal.reserve(12, 988), 12u);
    // Now 10..1005 is fully booked.
    EXPECT_EQ(cal.reserve(10, 1), 1005u);
}

TEST(Calendar, ExactFitGap)
{
    BusyCalendar cal;
    cal.reserve(10, 2);   // [10,12)
    cal.reserve(14, 2);   // [14,16)
    EXPECT_EQ(cal.reserve(10, 2), 12u);  // exactly fills [12,14)
    EXPECT_EQ(cal.reserve(10, 2), 16u);  // everything before is full
}

TEST(Calendar, TooSmallGapIsSkipped)
{
    BusyCalendar cal;
    cal.reserve(10, 2);   // [10,12)
    cal.reserve(13, 2);   // [13,15)
    // A 2-cycle request does not fit the 1-cycle gap [12,13).
    EXPECT_EQ(cal.reserve(11, 2), 15u);
}

TEST(Calendar, ProbeMatchesReserveWithoutMutation)
{
    BusyCalendar cal;
    cal.reserve(10, 4);
    const Cycle p1 = cal.probe(10, 2);
    const Cycle p2 = cal.probe(10, 2);
    EXPECT_EQ(p1, p2);  // probe does not reserve
    EXPECT_EQ(cal.reserve(10, 2), p1);
}

TEST(Calendar, BusyAt)
{
    BusyCalendar cal;
    cal.reserve(10, 3);
    EXPECT_FALSE(cal.busyAt(9));
    EXPECT_TRUE(cal.busyAt(10));
    EXPECT_TRUE(cal.busyAt(12));
    EXPECT_FALSE(cal.busyAt(13));
}

TEST(Calendar, CapacityDropsOldest)
{
    BusyCalendar cal(4);
    for (Cycle t = 0; t < 50; t += 10)
        cal.reserve(t, 1);  // five reservations, capacity four
    EXPECT_EQ(cal.size(), 4u);
    // The oldest interval [0,1) was forgotten: reserving there is free.
    EXPECT_EQ(cal.reserve(0, 1), 0u);
}

TEST(Calendar, ClearEmpties)
{
    BusyCalendar cal;
    cal.reserve(5, 5);
    cal.clear();
    EXPECT_EQ(cal.size(), 0u);
    EXPECT_EQ(cal.reserve(5, 5), 5u);
}
