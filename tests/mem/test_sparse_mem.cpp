/** SparseMemory edge cases: page-straddling accesses, zero-fill
 *  read-before-write, huge-address sparsity, and deep-copy isolation
 *  (the fault campaign's checkpoint/compare paths lean on all four). */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/sparse_mem.hpp"

using namespace diag;

TEST(SparseMemory, ReadBeforeWriteIsZeroAndAllocationFree)
{
    SparseMemory mem;
    EXPECT_EQ(mem.read8(0x0), 0u);
    EXPECT_EQ(mem.read32(0x1234), 0u);
    EXPECT_EQ(mem.read32(0xdead'0000), 0u);
    // Reads are non-faulting and must not materialize pages.
    EXPECT_EQ(mem.numPages(), 0u);
}

TEST(SparseMemory, MisalignedWriteStraddlesPageBoundary)
{
    SparseMemory mem;
    const Addr last = SparseMemory::kPageSize - 2;  // 0xffe
    mem.write32(last, 0xaabbccdd);
    EXPECT_EQ(mem.read32(last), 0xaabbccddu);
    // Little-endian: low half on page 0, high half on page 1.
    EXPECT_EQ(mem.read8(last + 0), 0xddu);
    EXPECT_EQ(mem.read8(last + 1), 0xccu);
    EXPECT_EQ(mem.read8(last + 2), 0xbbu);
    EXPECT_EQ(mem.read8(last + 3), 0xaau);
    EXPECT_EQ(mem.numPages(), 2u);
}

TEST(SparseMemory, BlockCopyAcrossPages)
{
    SparseMemory mem;
    u8 src[16], dst[16] = {};
    for (unsigned i = 0; i < 16; ++i)
        src[i] = static_cast<u8>(0x40 + i);
    const Addr base = 3 * SparseMemory::kPageSize - 7;
    mem.writeBlock(base, src, sizeof(src));
    mem.readBlock(base, dst, sizeof(dst));
    EXPECT_EQ(std::memcmp(src, dst, sizeof(src)), 0);
}

TEST(SparseMemory, HugeAddressesStaySparse)
{
    SparseMemory mem;
    mem.write32(0x0000'0040, 1);
    mem.write32(0x7fff'fffc, 2);
    mem.write32(0xffff'f000, 3);
    EXPECT_EQ(mem.read32(0x0000'0040), 1u);
    EXPECT_EQ(mem.read32(0x7fff'fffc), 2u);
    EXPECT_EQ(mem.read32(0xffff'f000), 3u);
    // Three touched words = three pages, regardless of address span.
    EXPECT_EQ(mem.numPages(), 3u);
}

TEST(SparseMemory, SubWordWidthsAndZeroExtension)
{
    SparseMemory mem;
    mem.write(0x100, 0xdead'beef, 1);
    EXPECT_EQ(mem.read(0x100, 1), 0xefu);
    EXPECT_EQ(mem.read(0x100, 2), 0x00efu);
    mem.write(0x200, 0xdead'beef, 2);
    EXPECT_EQ(mem.read(0x200, 2), 0xbeefu);
    EXPECT_EQ(mem.read32(0x200), 0x0000'beefu);
}

TEST(SparseMemory, DeepCopyIsIndependent)
{
    SparseMemory a;
    a.write32(0x1000, 0x11111111);
    SparseMemory b(a);
    b.write32(0x1000, 0x22222222);
    b.write32(0x9000, 0x33333333);
    EXPECT_EQ(a.read32(0x1000), 0x11111111u);
    EXPECT_EQ(a.numPages(), 1u);
    EXPECT_EQ(b.read32(0x1000), 0x22222222u);
    EXPECT_EQ(b.numPages(), 2u);

    // Assignment replaces contents wholesale.
    a = b;
    EXPECT_EQ(a.read32(0x9000), 0x33333333u);
    EXPECT_EQ(a.numPages(), 2u);
}

TEST(SparseMemory, ForEachPageVisitsEveryResidentBase)
{
    SparseMemory mem;
    mem.write8(0x0000, 1);
    mem.write8(0x5000, 1);
    mem.write8(0xa0000, 1);
    std::vector<Addr> bases;
    mem.forEachPage([&](Addr b) { bases.push_back(b); });
    std::sort(bases.begin(), bases.end());
    ASSERT_EQ(bases.size(), 3u);
    EXPECT_EQ(bases[0], 0x0000u);
    EXPECT_EQ(bases[1], 0x5000u);
    EXPECT_EQ(bases[2], 0xa0000u);
}
