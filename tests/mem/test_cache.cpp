/** Cache model tests: hit/miss behaviour, LRU, banking, write-back. */
#include <gtest/gtest.h>

#include "mem/cache.hpp"

using namespace diag;
using namespace diag::mem;

namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.size_bytes = 1024;   // 4 sets x 4 ways x 64B
    p.assoc = 4;
    p.line_bytes = 64;
    p.banks = 1;
    p.hit_latency = 4;
    p.bank_occupancy = 1;
    return p;
}

} // namespace

TEST(Cache, ColdMissThenHit)
{
    Cache c("c", smallCache());
    const CacheLookup miss = c.access(0x1000, false, 10);
    EXPECT_FALSE(miss.hit);
    EXPECT_EQ(miss.grant, 10u);
    c.fill(0x1000, false, 50);
    const CacheLookup hit = c.access(0x1000, false, 60);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.done, 60u + 4u);
}

TEST(Cache, SameLineDifferentOffsetHits)
{
    Cache c("c", smallCache());
    c.fill(0x1000, false, 0);
    EXPECT_TRUE(c.access(0x103f, false, 10).hit);
    EXPECT_FALSE(c.access(0x1040, false, 20).hit);
}

TEST(Cache, LruEviction)
{
    Cache c("c", smallCache());  // 4 sets; set stride is 256 bytes
    // Four lines mapping to set 0 fill all ways.
    for (u32 i = 0; i < 4; ++i)
        c.fill(0x1000 + i * 0x100, false, i);
    // Touch lines 1..3 so line 0 is LRU.
    for (u32 i = 1; i < 4; ++i)
        EXPECT_TRUE(c.access(0x1000 + i * 0x100, false, 10 + i).hit);
    // A fifth line evicts line 0.
    c.fill(0x1000 + 4 * 0x100, false, 20);
    EXPECT_FALSE(c.access(0x1000, false, 30).hit);
    EXPECT_TRUE(c.access(0x1400, false, 40).hit);
}

TEST(Cache, DirtyEvictionSignalsWriteback)
{
    Cache c("c", smallCache());
    c.fill(0x1000, true, 0);  // dirty fill
    for (u32 i = 1; i < 4; ++i)
        c.fill(0x1000 + i * 0x100, false, i);
    // Evicting the dirty line returns true.
    EXPECT_TRUE(c.fill(0x1000 + 4 * 0x100, false, 10));
    EXPECT_EQ(c.stats().get("writebacks"), 1.0);
}

TEST(Cache, WriteHitSetsDirty)
{
    Cache c("c", smallCache());
    c.fill(0x1000, false, 0);
    EXPECT_TRUE(c.access(0x1000, true, 5).hit);
    for (u32 i = 1; i < 4; ++i)
        c.fill(0x1000 + i * 0x100, false, i + 10);
    EXPECT_TRUE(c.fill(0x1500, false, 20));  // dirty writeback
}

TEST(Cache, BankConflictSerializes)
{
    // Banks are word-interleaved at 8-byte grain: accesses to the same
    // 8-byte word conflict; accesses 8 bytes apart use separate banks.
    CacheParams p = smallCache();
    p.banks = 2;
    p.bank_occupancy = 3;
    Cache c("c", p);
    c.fill(0x1000, false, 0);
    const CacheLookup a = c.access(0x1000, false, 100);
    const CacheLookup b = c.access(0x1004, false, 100);  // same word8
    const CacheLookup d = c.access(0x1008, false, 100);  // next bank
    EXPECT_EQ(a.grant, 100u);
    EXPECT_EQ(b.grant, 103u);  // waits for occupancy
    EXPECT_EQ(d.grant, 100u);  // independent bank
    // 16 bytes apart wraps back to the first bank.
    const CacheLookup e = c.access(0x1010, false, 100);
    EXPECT_EQ(e.grant, 106u);
}

TEST(Cache, DirectMapped)
{
    CacheParams p = smallCache();
    p.assoc = 1;  // 16 sets
    Cache c("dm", p);
    c.fill(0x0000, false, 0);
    EXPECT_TRUE(c.access(0x0000, false, 1).hit);
    // Same set (stride = 1024), conflicting line evicts immediately.
    c.fill(0x0400, false, 2);
    EXPECT_FALSE(c.access(0x0000, false, 3).hit);
}

TEST(Cache, StatsCount)
{
    Cache c("c", smallCache());
    c.access(0x0, false, 0);
    c.fill(0x0, false, 0);
    c.access(0x0, false, 1);
    c.access(0x0, true, 2);
    EXPECT_EQ(c.stats().get("reads"), 2.0);
    EXPECT_EQ(c.stats().get("writes"), 1.0);
    EXPECT_EQ(c.stats().get("hits"), 2.0);
    EXPECT_EQ(c.stats().get("misses"), 1.0);
    c.reset();
    EXPECT_EQ(c.stats().get("hits"), 0.0);
    EXPECT_FALSE(c.access(0x0, false, 0).hit);  // invalidated
}
